open Monitor_can
module Value = Monitor_signal.Value

let value_t = Alcotest.testable Value.pp Value.equal

(* Frame ------------------------------------------------------------------ *)

let test_frame_validation () =
  Alcotest.check_raises "id too big"
    (Invalid_argument "Frame.make: identifier out of range") (fun () ->
      ignore (Frame.make ~id:0x800 ~data:Bytes.empty ()));
  Alcotest.check_raises "payload too big"
    (Invalid_argument "Frame.make: payload exceeds 8 bytes") (fun () ->
      ignore (Frame.make ~id:1 ~data:(Bytes.make 9 'x') ()));
  let f = Frame.make ~format:Frame.Extended ~id:0x1FFFFFFF ~data:Bytes.empty () in
  Alcotest.(check int) "extended id ok" 0x1FFFFFFF f.Frame.id

let test_frame_priority () =
  let a = Frame.make ~id:0x10 ~data:Bytes.empty () in
  let b = Frame.make ~id:0x20 ~data:Bytes.empty () in
  Alcotest.(check bool) "lower id wins" true (Frame.compare_priority a b < 0)

let test_frame_data_isolated () =
  let data = Bytes.of_string "\001\002" in
  let f = Frame.make ~id:1 ~data () in
  Bytes.set data 0 '\255';
  Alcotest.(check char) "copied payload" '\001' (Bytes.get f.Frame.data 0)

(* Crc --------------------------------------------------------------------- *)

let test_crc_known_properties () =
  Alcotest.(check int) "empty is zero" 0 (Crc.crc15 []);
  let bits = [ true; false; true; true; false ] in
  Alcotest.(check int) "deterministic" (Crc.crc15 bits) (Crc.crc15 bits);
  Alcotest.(check bool) "sensitive to a flip" true
    (Crc.crc15 bits <> Crc.crc15 [ true; false; true; true; true ]);
  Alcotest.(check int) "15 bits out" 15 (List.length (Crc.crc15_bits bits));
  Alcotest.(check bool) "crc in range" true
    (Crc.crc15 bits >= 0 && Crc.crc15 bits < 0x8000)

let test_crc_self_check () =
  (* Appending the CRC to the message must give remainder 0. *)
  let bits = [ true; true; false; true; false; false; true ] in
  let with_crc = bits @ Crc.crc15_bits bits in
  Alcotest.(check int) "remainder zero" 0 (Crc.crc15 with_crc)

(* Bitfield ---------------------------------------------------------------- *)

let test_bitfield_le_roundtrip () =
  let payload = Bytes.make 8 '\000' in
  Bitfield.insert payload Bitfield.Little_endian ~start_bit:12 ~length:10 0x2ABL;
  let v = Bitfield.extract payload Bitfield.Little_endian ~start_bit:12 ~length:10 in
  Alcotest.(check int64) "LE roundtrip" 0x2ABL v

let test_bitfield_be_roundtrip () =
  let payload = Bytes.make 8 '\000' in
  Bitfield.insert payload Bitfield.Big_endian ~start_bit:7 ~length:16 0xBEEFL;
  let v = Bitfield.extract payload Bitfield.Big_endian ~start_bit:7 ~length:16 in
  Alcotest.(check int64) "BE roundtrip" 0xBEEFL v;
  (* Motorola MSB-first: 0xBE in byte 0, 0xEF in byte 1. *)
  Alcotest.(check int) "byte0" 0xBE (Char.code (Bytes.get payload 0));
  Alcotest.(check int) "byte1" 0xEF (Char.code (Bytes.get payload 1))

let test_bitfield_le_layout () =
  let payload = Bytes.make 2 '\000' in
  Bitfield.insert payload Bitfield.Little_endian ~start_bit:4 ~length:8 0xFFL;
  Alcotest.(check int) "low nibble of byte0 clear" 0xF0
    (Char.code (Bytes.get payload 0));
  Alcotest.(check int) "low nibble of byte1 set" 0x0F
    (Char.code (Bytes.get payload 1))

let test_bitfield_no_clobber () =
  let payload = Bytes.make 2 '\255' in
  Bitfield.insert payload Bitfield.Little_endian ~start_bit:4 ~length:4 0x0L;
  Alcotest.(check int) "only the nibble cleared" 0x0F
    (Char.code (Bytes.get payload 0));
  Alcotest.(check int) "other byte untouched" 0xFF
    (Char.code (Bytes.get payload 1))

let test_bitfield_bounds () =
  let payload = Bytes.make 1 '\000' in
  Alcotest.check_raises "exceeds payload"
    (Invalid_argument "Bitfield.insert: field exceeds payload") (fun () ->
      Bitfield.insert payload Bitfield.Little_endian ~start_bit:4 ~length:8 0L);
  Alcotest.(check bool) "fits says no" false
    (Bitfield.fits ~dlc:1 Bitfield.Little_endian ~start_bit:4 ~length:8);
  Alcotest.(check bool) "fits says yes" true
    (Bitfield.fits ~dlc:1 Bitfield.Little_endian ~start_bit:0 ~length:8)

let test_sign_extend () =
  Alcotest.(check int64) "negative" (-1L) (Bitfield.sign_extend 0xFFL ~length:8);
  Alcotest.(check int64) "positive" 0x7FL (Bitfield.sign_extend 0x7FL ~length:8);
  Alcotest.(check int64) "-128" (-128L) (Bitfield.sign_extend 0x80L ~length:8)

let bitfield_roundtrip_prop =
  QCheck.Test.make ~name:"bitfield roundtrip (both orders)" ~count:500
    QCheck.(triple (int_range 0 32) (int_range 1 31) (pair int64 bool))
    (fun (start_bit, length, (raw, big_endian)) ->
      let order =
        if big_endian then Bitfield.Big_endian else Bitfield.Little_endian
      in
      let mask =
        Int64.sub (Int64.shift_left 1L length) 1L
      in
      let raw = Int64.logand raw mask in
      if not (Bitfield.fits ~dlc:8 order ~start_bit ~length) then true
      else begin
        let payload = Bytes.make 8 '\000' in
        Bitfield.insert payload order ~start_bit ~length raw;
        Int64.equal raw (Bitfield.extract payload order ~start_bit ~length)
      end)

(* Coding ------------------------------------------------------------------ *)

let scaled =
  Coding.make ~signal_name:"speed" ~start_bit:0 ~length:16
    ~byte_order:Bitfield.Little_endian
    ~repr:(Coding.Scaled_int { signed = false; scale = 0.01; offset = 0.0 })

let scaled_signed =
  Coding.make ~signal_name:"temp" ~start_bit:0 ~length:12
    ~byte_order:Bitfield.Little_endian
    ~repr:(Coding.Scaled_int { signed = true; scale = 0.5; offset = -40.0 })

let raw64 =
  Coding.make ~signal_name:"x" ~start_bit:0 ~length:64
    ~byte_order:Bitfield.Little_endian ~repr:Coding.Raw_float64

let test_coding_scaled_roundtrip () =
  let raw = Coding.encode scaled (Value.Float 123.45) in
  match Coding.decode scaled raw with
  | Value.Float x -> Alcotest.(check (float 0.005)) "quantised" 123.45 x
  | _ -> Alcotest.fail "expected float"

let test_coding_scaled_saturates () =
  let raw = Coding.encode scaled (Value.Float 1e9) in
  Alcotest.(check int64) "saturates at max raw" 0xFFFFL raw;
  let raw = Coding.encode scaled (Value.Float (-5.0)) in
  Alcotest.(check int64) "saturates at 0" 0L raw

let test_coding_signed () =
  let raw = Coding.encode scaled_signed (Value.Float (-45.5)) in
  match Coding.decode scaled_signed raw with
  | Value.Float x -> Alcotest.(check (float 0.25)) "negative phys" (-45.5) x
  | _ -> Alcotest.fail "expected float"

let test_coding_raw_float64_exceptional () =
  List.iter
    (fun x ->
      let raw = Coding.encode raw64 (Value.Float x) in
      match Coding.decode raw64 raw with
      | Value.Float y ->
        Alcotest.(check bool) "bit-exact through the wire" true
          (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
      | _ -> Alcotest.fail "expected float")
    [ Float.nan; Float.infinity; Float.neg_infinity; 0.0; -0.0; Float.pi;
      4.9406564584124654e-324 ]

let test_coding_bool_enum () =
  let b =
    Coding.make ~signal_name:"flag" ~start_bit:5 ~length:1
      ~byte_order:Bitfield.Little_endian ~repr:Coding.Raw_bool
  in
  Alcotest.(check int64) "true" 1L (Coding.encode b (Value.Bool true));
  Alcotest.check value_t "decode true" (Value.Bool true) (Coding.decode b 1L);
  let e =
    Coding.make ~signal_name:"sel" ~start_bit:0 ~length:4
      ~byte_order:Bitfield.Little_endian ~repr:Coding.Raw_enum
  in
  Alcotest.(check int64) "enum" 5L (Coding.encode e (Value.Enum 5));
  Alcotest.check value_t "decode enum" (Value.Enum 5) (Coding.decode e 5L);
  Alcotest.(check int64) "enum saturates" 15L (Coding.encode e (Value.Enum 99))

let test_coding_validation () =
  Alcotest.check_raises "float32 length"
    (Invalid_argument "Coding.make: Raw_float32 requires length 32") (fun () ->
      ignore
        (Coding.make ~signal_name:"x" ~start_bit:0 ~length:16
           ~byte_order:Bitfield.Little_endian ~repr:Coding.Raw_float32))

(* Message / Dbc ------------------------------------------------------------ *)

let msg_speed =
  Message.make ~name:"SpeedMsg" ~id:0x100 ~dlc:8 ~period_ms:10
    ~codings:[ raw64 ] ()

let msg_pair =
  Message.make ~name:"PairMsg" ~id:0x101 ~dlc:4 ~period_ms:10
    ~codings:
      [ Coding.make ~signal_name:"u" ~start_bit:0 ~length:16
          ~byte_order:Bitfield.Little_endian
          ~repr:(Coding.Scaled_int { signed = false; scale = 1.0; offset = 0.0 });
        Coding.make ~signal_name:"v" ~start_bit:16 ~length:16
          ~byte_order:Bitfield.Little_endian
          ~repr:(Coding.Scaled_int { signed = false; scale = 1.0; offset = 0.0 }) ]
    ()

let test_message_overlap_rejected () =
  Alcotest.(check bool) "overlap detected" true
    (try
       ignore
         (Message.make ~name:"Bad" ~id:5 ~dlc:2 ~period_ms:10
            ~codings:
              [ Coding.make ~signal_name:"a" ~start_bit:0 ~length:10
                  ~byte_order:Bitfield.Little_endian ~repr:Coding.Raw_enum;
                Coding.make ~signal_name:"b" ~start_bit:8 ~length:4
                  ~byte_order:Bitfield.Little_endian ~repr:Coding.Raw_enum ]
            ());
       false
     with Invalid_argument _ -> true)

let test_message_encode_decode () =
  let lookup = function
    | "u" -> Some (Value.Float 1000.0)
    | "v" -> Some (Value.Float 42.0)
    | _ -> None
  in
  let frame = Message.encode msg_pair ~lookup in
  let decoded = Message.decode msg_pair frame in
  Alcotest.(check int) "two signals" 2 (List.length decoded);
  Alcotest.check value_t "u" (Value.Float 1000.0) (List.assoc "u" decoded);
  Alcotest.check value_t "v" (Value.Float 42.0) (List.assoc "v" decoded)

let test_message_unknown_signal_zero () =
  let frame = Message.encode msg_pair ~lookup:(fun _ -> None) in
  let decoded = Message.decode msg_pair frame in
  Alcotest.check value_t "zero fill" (Value.Float 0.0) (List.assoc "u" decoded)

let test_dbc () =
  let dbc = Dbc.create [ msg_speed; msg_pair ] in
  Alcotest.(check bool) "find by id" true (Dbc.find_by_id dbc 0x100 <> None);
  Alcotest.(check bool) "find by name" true (Dbc.find_by_name dbc "PairMsg" <> None);
  Alcotest.(check bool) "owner of v" true
    (match Dbc.message_of_signal dbc "v" with
     | Some m -> m.Message.name = "PairMsg"
     | None -> false);
  Alcotest.(check (list string)) "signals" [ "x"; "u"; "v" ] (Dbc.signal_names dbc);
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Dbc.create: duplicate id 0x100") (fun () ->
      ignore
        (Dbc.create
           [ msg_speed;
             Message.make ~name:"Other" ~id:0x100 ~dlc:0 ~period_ms:10
               ~codings:[] () ]))

let test_dbc_decode_unknown_id () =
  let dbc = Dbc.create [ msg_pair ] in
  let stranger = Frame.make ~id:0x7FF ~data:Bytes.empty () in
  Alcotest.(check int) "unknown id ignored" 0
    (List.length (Dbc.decode_frame dbc stranger))

(* Bus ----------------------------------------------------------------------- *)

let test_frame_bit_count_sane () =
  let empty = Frame.make ~id:0 ~data:Bytes.empty () in
  let full = Frame.make ~id:0x555 ~data:(Bytes.make 8 '\170') () in
  let n_empty = Bus.frame_bit_count empty in
  let n_full = Bus.frame_bit_count full in
  (* 47 bits nominal for dlc=0, 111 for dlc=8, plus stuffing. *)
  Alcotest.(check bool) "empty >= 47" true (n_empty >= 47);
  Alcotest.(check bool) "empty bounded" true (n_empty <= 47 + 24);
  Alcotest.(check bool) "full >= 111" true (n_full >= 111);
  Alcotest.(check bool) "full bounded" true (n_full <= 111 + 29)

let test_bus_delivery_order_priority () =
  let bus = Bus.create () in
  let seen = ref [] in
  Bus.subscribe bus (fun ~time:_ f -> seen := f.Frame.id :: !seen);
  (* Two frames requested at the same instant: lower id must win. *)
  Bus.request bus ~time:0.0 (Frame.make ~id:0x200 ~data:Bytes.empty ());
  Bus.request bus ~time:0.0 (Frame.make ~id:0x100 ~data:Bytes.empty ());
  Bus.run_until bus ~time:0.01;
  Alcotest.(check (list int)) "priority order" [ 0x100; 0x200 ] (List.rev !seen)

let test_bus_timing () =
  let bus = Bus.create ~bitrate:500_000 () in
  let times = ref [] in
  Bus.subscribe bus (fun ~time f -> times := (time, f.Frame.id) :: !times);
  let f = Frame.make ~id:1 ~data:(Bytes.make 8 '\000') () in
  Bus.request bus ~time:0.0 f;
  Bus.run_until bus ~time:1.0;
  match !times with
  | [ (t, _) ] ->
    let expected = float_of_int (Bus.frame_bit_count f) /. 500_000.0 in
    Alcotest.(check (float 1e-9)) "delivery at frame duration" expected t
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_bus_serialisation () =
  let bus = Bus.create () in
  let times = ref [] in
  Bus.subscribe bus (fun ~time _ -> times := time :: !times);
  let f = Frame.make ~id:1 ~data:(Bytes.make 4 '\000') () in
  Bus.request bus ~time:0.0 f;
  Bus.request bus ~time:0.0 f;
  Bus.run_until bus ~time:1.0;
  match List.rev !times with
  | [ t1; t2 ] ->
    Alcotest.(check (float 1e-12)) "back to back" (2.0 *. t1) t2
  | _ -> Alcotest.fail "expected two deliveries"

let test_bus_no_delivery_before_completion () =
  let bus = Bus.create ~bitrate:500_000 () in
  let count = ref 0 in
  Bus.subscribe bus (fun ~time:_ _ -> incr count);
  let f = Frame.make ~id:1 ~data:(Bytes.make 8 '\000') () in
  Bus.request bus ~time:0.0 f;
  Bus.run_until bus ~time:0.0001;  (* shorter than the frame duration *)
  Alcotest.(check int) "not yet" 0 !count;
  Bus.run_until bus ~time:0.01;
  Alcotest.(check int) "delivered later" 1 !count

let test_bus_monotonic () =
  let bus = Bus.create () in
  Bus.run_until bus ~time:1.0;
  Alcotest.check_raises "backwards"
    (Invalid_argument "Bus.run_until: time must not go backwards") (fun () ->
      Bus.run_until bus ~time:0.5)

(* Scheduler / Logger -------------------------------------------------------- *)

let test_scheduler_periodic_capture () =
  let bus = Bus.create () in
  let logger = Logger.attach bus in
  let sched = Scheduler.create bus in
  let speed = ref 10.0 in
  Scheduler.add_task sched ~message:msg_speed
    ~lookup:(fun name -> if name = "x" then Some (Value.Float !speed) else None)
    ();
  Scheduler.advance sched ~to_time:0.1;
  (* 10 ms period over 100 ms -> 10 publications (t=0 .. 90ms). *)
  Alcotest.(check int) "ten frames" 10 (Logger.frame_count logger)

let test_scheduler_two_rates_decode () =
  let bus = Bus.create () in
  let logger = Logger.attach bus in
  let sched = Scheduler.create bus in
  let slow =
    Message.make ~name:"Slow" ~id:0x200 ~dlc:8 ~period_ms:40
      ~codings:
        [ Coding.make ~signal_name:"s" ~start_bit:0 ~length:64
            ~byte_order:Bitfield.Little_endian ~repr:Coding.Raw_float64 ]
      ()
  in
  Scheduler.add_task sched ~message:msg_speed
    ~lookup:(fun _ -> Some (Value.Float 1.0))
    ();
  Scheduler.add_task sched ~message:slow
    ~lookup:(fun _ -> Some (Value.Float 2.0))
    ();
  Scheduler.advance sched ~to_time:0.08;
  let dbc = Dbc.create [ msg_speed; slow ] in
  let trace = Logger.to_trace logger dbc in
  let xs = Monitor_trace.Trace.filter_signals trace [ "x" ] in
  let ss = Monitor_trace.Trace.filter_signals trace [ "s" ] in
  Alcotest.(check int) "fast signal 8 samples" 8 (Monitor_trace.Trace.length xs);
  Alcotest.(check int) "slow signal 2 samples" 2 (Monitor_trace.Trace.length ss)

let test_scheduler_jitter_determinism () =
  let run seed =
    let bus = Bus.create () in
    let logger = Logger.attach bus in
    let sched = Scheduler.create ~seed bus in
    Scheduler.add_task sched ~message:msg_speed ~jitter_ms:2.0
      ~lookup:(fun _ -> Some (Value.Float 0.0))
      ();
    Scheduler.advance sched ~to_time:0.1;
    List.map fst (Logger.frames logger)
  in
  Alcotest.(check bool) "same seed same times" true (run 5L = run 5L);
  Alcotest.(check bool) "jitter shifts times" true (run 5L <> run 6L)

let suite =
  [ ( "can",
      [ Alcotest.test_case "frame validation" `Quick test_frame_validation;
        Alcotest.test_case "frame priority" `Quick test_frame_priority;
        Alcotest.test_case "frame data isolated" `Quick test_frame_data_isolated;
        Alcotest.test_case "crc properties" `Quick test_crc_known_properties;
        Alcotest.test_case "crc self check" `Quick test_crc_self_check;
        Alcotest.test_case "bitfield LE roundtrip" `Quick test_bitfield_le_roundtrip;
        Alcotest.test_case "bitfield BE roundtrip" `Quick test_bitfield_be_roundtrip;
        Alcotest.test_case "bitfield LE layout" `Quick test_bitfield_le_layout;
        Alcotest.test_case "bitfield no clobber" `Quick test_bitfield_no_clobber;
        Alcotest.test_case "bitfield bounds" `Quick test_bitfield_bounds;
        Alcotest.test_case "sign extend" `Quick test_sign_extend;
        QCheck_alcotest.to_alcotest bitfield_roundtrip_prop;
        Alcotest.test_case "coding scaled roundtrip" `Quick test_coding_scaled_roundtrip;
        Alcotest.test_case "coding saturation" `Quick test_coding_scaled_saturates;
        Alcotest.test_case "coding signed" `Quick test_coding_signed;
        Alcotest.test_case "coding raw float64 exceptional" `Quick
          test_coding_raw_float64_exceptional;
        Alcotest.test_case "coding bool/enum" `Quick test_coding_bool_enum;
        Alcotest.test_case "coding validation" `Quick test_coding_validation;
        Alcotest.test_case "message overlap" `Quick test_message_overlap_rejected;
        Alcotest.test_case "message encode/decode" `Quick test_message_encode_decode;
        Alcotest.test_case "message zero fill" `Quick test_message_unknown_signal_zero;
        Alcotest.test_case "dbc" `Quick test_dbc;
        Alcotest.test_case "dbc unknown id" `Quick test_dbc_decode_unknown_id;
        Alcotest.test_case "frame bit count" `Quick test_frame_bit_count_sane;
        Alcotest.test_case "bus priority" `Quick test_bus_delivery_order_priority;
        Alcotest.test_case "bus timing" `Quick test_bus_timing;
        Alcotest.test_case "bus serialisation" `Quick test_bus_serialisation;
        Alcotest.test_case "bus completion" `Quick test_bus_no_delivery_before_completion;
        Alcotest.test_case "bus monotonic" `Quick test_bus_monotonic;
        Alcotest.test_case "scheduler periodic" `Quick test_scheduler_periodic_capture;
        Alcotest.test_case "scheduler two rates" `Quick test_scheduler_two_rates_decode;
        Alcotest.test_case "scheduler jitter" `Quick test_scheduler_jitter_determinism ] ) ]
