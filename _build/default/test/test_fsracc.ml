open Monitor_fsracc
module Def = Monitor_signal.Def

(* Io ---------------------------------------------------------------------- *)

let test_io_inventory () =
  Alcotest.(check int) "fifteen signals" 15 (List.length Io.signals);
  Alcotest.(check int) "nine inputs" 9 (List.length Io.input_names);
  Alcotest.(check int) "six outputs" 6 (List.length Io.output_names);
  (* Figure 1 order. *)
  Alcotest.(check (list string)) "input order"
    [ "Velocity"; "AccelPedPos"; "BrakePedPres"; "ACCSetSpeed"; "ThrotPos";
      "VehicleAhead"; "TargetRange"; "TargetRelVel"; "SelHeadway" ]
    Io.input_names;
  Alcotest.(check (list string)) "output order"
    [ "ACCEnabled"; "BrakeRequested"; "TorqueRequested"; "RequestedTorque";
      "RequestedDecel"; "ServiceACC" ]
    Io.output_names

let test_io_periods () =
  let period name = (Io.find_exn name).Def.period_ms in
  Alcotest.(check int) "velocity fast" Io.fast_period_ms (period "Velocity");
  Alcotest.(check int) "set speed slow" Io.slow_period_ms (period "ACCSetSpeed");
  Alcotest.(check int) "torque slow" Io.slow_period_ms (period "RequestedTorque");
  Alcotest.(check int) "four to one"
    (4 * Io.fast_period_ms) Io.slow_period_ms

let test_io_float_inputs () =
  Alcotest.(check int) "seven float inputs" 7 (List.length Io.float_input_names);
  Alcotest.(check bool) "no enum" true
    (not (List.mem "SelHeadway" Io.float_input_names));
  Alcotest.(check bool) "no bool" true
    (not (List.mem "VehicleAhead" Io.float_input_names))

let test_io_dbc_covers_all_signals () =
  let on_bus = Monitor_can.Dbc.signal_names Io.dbc in
  List.iter
    (fun (_, d) ->
      Alcotest.(check bool) (d.Def.name ^ " on the bus") true
        (List.mem d.Def.name on_bus))
    Io.signals

let test_io_find () =
  Alcotest.(check bool) "find known" true (Io.find "Velocity" <> None);
  Alcotest.(check bool) "find unknown" true (Io.find "Bogus" = None);
  Alcotest.check_raises "find_exn unknown" Not_found (fun () ->
      ignore (Io.find_exn "Bogus"))

(* Controller ---------------------------------------------------------------- *)

let nominal =
  { Controller.velocity = 25.0; accel_ped_pos = 0.0; brake_ped_pres = 0.0;
    acc_set_speed = 27.0; throt_pos = 10.0; vehicle_ahead = true;
    target_range = 60.0; target_rel_vel = -1.0; sel_headway = 1 }

let run_steps ?(inputs = nominal) ?(steps = 1) c =
  let out = ref (Controller.step c ~dt:0.01 inputs) in
  for _ = 2 to steps do
    out := Controller.step c ~dt:0.01 inputs
  done;
  !out

let test_controller_engages () =
  let c = Controller.create () in
  let out = run_steps c in
  Alcotest.(check bool) "enabled" true out.Controller.acc_enabled;
  Alcotest.(check bool) "engaged mode" true (Controller.mode c = Controller.Engaged)

let test_controller_standby_without_set_speed () =
  let c = Controller.create () in
  let out = run_steps ~inputs:{ nominal with Controller.acc_set_speed = 0.0 } c in
  Alcotest.(check bool) "disabled" false out.Controller.acc_enabled;
  Alcotest.(check bool) "no torque" false out.Controller.torque_requested;
  Alcotest.(check bool) "standby" true (Controller.mode c = Controller.Standby)

let test_controller_brake_pedal_disengages () =
  let c = Controller.create () in
  ignore (run_steps ~steps:10 c);
  let out =
    run_steps ~inputs:{ nominal with Controller.brake_ped_pres = 50.0 } c
  in
  Alcotest.(check bool) "driver override" false out.Controller.acc_enabled

let test_controller_speed_control () =
  (* Below set speed with no target: requests positive torque. *)
  let c = Controller.create () in
  let out =
    run_steps ~steps:5
      ~inputs:{ nominal with Controller.vehicle_ahead = false; velocity = 20.0 }
      c
  in
  Alcotest.(check bool) "torque requested" true out.Controller.torque_requested;
  Alcotest.(check bool) "positive torque" true (out.Controller.requested_torque > 0.0)

let test_controller_gap_braking () =
  (* Closing fast on a very near target: brakes, decel negative. *)
  let c = Controller.create () in
  let out =
    run_steps ~steps:5
      ~inputs:{ nominal with Controller.target_range = 10.0; target_rel_vel = -8.0 }
      c
  in
  Alcotest.(check bool) "braking" true out.Controller.brake_requested;
  Alcotest.(check bool) "decel negative" true (out.Controller.requested_decel < 0.0);
  Alcotest.(check bool) "engine floor commanded" true
    (out.Controller.requested_torque < 0.0)

let test_controller_no_input_validation () =
  (* The deliberate defect: NaN flows straight through to the outputs. *)
  let c = Controller.create () in
  ignore (run_steps ~steps:5 c);
  let out =
    run_steps ~inputs:{ nominal with Controller.target_range = Float.nan } c
  in
  Alcotest.(check bool) "NaN reaches the torque request" true
    (Float.is_nan out.Controller.requested_torque);
  Alcotest.(check bool) "still claims control" true out.Controller.acc_enabled

let test_controller_absurd_set_speed_leaks () =
  (* The prototype arbitration: a huge set speed pushes past the gap
     controller even with a target present. *)
  let c = Controller.create () in
  let out =
    run_steps ~steps:5
      ~inputs:{ nominal with Controller.acc_set_speed = 1200.0 } c
  in
  Alcotest.(check bool) "accelerating toward target" true
    (out.Controller.torque_requested && out.Controller.requested_torque > 0.0)

let test_controller_sane_set_speed_follows () =
  (* A sane set speed above the lead's: the gap controller wins. *)
  let c = Controller.create () in
  let out =
    run_steps ~steps:200
      ~inputs:
        { nominal with Controller.target_range = 20.0; target_rel_vel = -2.0 }
      c
  in
  Alcotest.(check bool) "not accelerating into the lead" true
    ((not out.Controller.torque_requested)
    || out.Controller.requested_torque < 200.0)

let test_controller_fault_on_bad_enum () =
  let c = Controller.create () in
  let out = run_steps ~inputs:{ nominal with Controller.sel_headway = 7 } c in
  Alcotest.(check bool) "service indicator" true out.Controller.service_acc;
  (* Rule #0 by construction: ServiceACC true -> ACCEnabled false. *)
  Alcotest.(check bool) "not enabled" false out.Controller.acc_enabled;
  Alcotest.(check bool) "fault mode" true (Controller.mode c = Controller.Fault)

let test_rule0_invariant_holds_always () =
  (* Sweep a mix of inputs; ServiceACC && ACCEnabled must never co-occur. *)
  let c = Controller.create () in
  let prng = Monitor_util.Prng.create 5L in
  for _ = 1 to 2000 do
    let inputs =
      { Controller.velocity = Monitor_util.Prng.float_range prng (-100.0) 100.0;
        accel_ped_pos = 0.0;
        brake_ped_pres = Monitor_util.Prng.float_range prng 0.0 10.0;
        acc_set_speed = Monitor_util.Prng.float_range prng (-10.0) 60.0;
        throt_pos = 0.0;
        vehicle_ahead = Monitor_util.Prng.bool prng;
        target_range = Monitor_util.Prng.float_range prng (-10.0) 200.0;
        target_rel_vel = Monitor_util.Prng.float_range prng (-50.0) 50.0;
        sel_headway = Monitor_util.Prng.int prng 10 }
    in
    let out = Controller.step c ~dt:0.01 inputs in
    if out.Controller.service_acc && out.Controller.acc_enabled then
      Alcotest.fail "rule 0 violated by the feature itself"
  done

let test_controller_release_blip () =
  (* Abrupt brake release produces the Rule #5 positive-decel transient. *)
  let c = Controller.create () in
  let braking =
    { nominal with Controller.target_range = 10.0; target_rel_vel = -8.0 }
  in
  ignore (run_steps ~steps:20 ~inputs:braking c);
  (* Input snaps back to benign: release step is abrupt. *)
  let relaxed =
    { nominal with Controller.target_range = 120.0; target_rel_vel = 5.0 }
  in
  let blip = ref false in
  for _ = 1 to 10 do
    let out = Controller.step c ~dt:0.01 relaxed in
    if out.Controller.brake_requested && out.Controller.requested_decel > 0.0
    then blip := true
  done;
  Alcotest.(check bool) "positive decel transient" true !blip

let test_controller_gentle_release_no_blip () =
  let c = Controller.create () in
  let blip = ref false in
  (* Ramp the closing speed away slowly: release passes through the
     engine-braking band, no overshoot. *)
  for i = 0 to 399 do
    let rel = -8.0 +. (float_of_int i *. 0.025) in
    let out =
      Controller.step c ~dt:0.01
        { nominal with Controller.target_range = 40.0; target_rel_vel = rel }
    in
    if out.Controller.brake_requested && out.Controller.requested_decel > 0.0
    then blip := true
  done;
  Alcotest.(check bool) "no transient" false !blip

let test_controller_reset () =
  let c = Controller.create () in
  ignore (run_steps ~steps:10 c);
  Controller.reset c;
  Alcotest.(check bool) "standby after reset" true
    (Controller.mode c = Controller.Standby)

let test_headway_time () =
  Alcotest.(check (float 0.0)) "short" 1.0 (Controller.headway_time 0);
  Alcotest.(check (float 0.0)) "medium" 1.5 (Controller.headway_time 1);
  Alcotest.(check (float 0.0)) "long" 2.0 (Controller.headway_time 2);
  Alcotest.(check (float 0.0)) "fallback" 2.0 (Controller.headway_time 9)

let controller_outputs_consistent =
  QCheck.Test.make ~name:"torque and brake requests never co-assert" ~count:500
    QCheck.(triple (float_range (-100.0) 100.0) (float_range (-300.0) 300.0)
              (float_range (-60.0) 60.0))
    (fun (velocity, target_range, target_rel_vel) ->
      let c = Controller.create () in
      let out =
        Controller.step c ~dt:0.01
          { nominal with Controller.velocity; target_range; target_rel_vel }
      in
      not (out.Controller.torque_requested && out.Controller.brake_requested))

let suite =
  [ ( "fsracc",
      [ Alcotest.test_case "io inventory" `Quick test_io_inventory;
        Alcotest.test_case "io periods" `Quick test_io_periods;
        Alcotest.test_case "io float inputs" `Quick test_io_float_inputs;
        Alcotest.test_case "io dbc coverage" `Quick test_io_dbc_covers_all_signals;
        Alcotest.test_case "io find" `Quick test_io_find;
        Alcotest.test_case "engages" `Quick test_controller_engages;
        Alcotest.test_case "standby" `Quick test_controller_standby_without_set_speed;
        Alcotest.test_case "brake pedal disengage" `Quick
          test_controller_brake_pedal_disengages;
        Alcotest.test_case "speed control" `Quick test_controller_speed_control;
        Alcotest.test_case "gap braking" `Quick test_controller_gap_braking;
        Alcotest.test_case "no input validation" `Quick
          test_controller_no_input_validation;
        Alcotest.test_case "absurd set speed leaks" `Quick
          test_controller_absurd_set_speed_leaks;
        Alcotest.test_case "sane set speed follows" `Quick
          test_controller_sane_set_speed_follows;
        Alcotest.test_case "fault on bad enum" `Quick test_controller_fault_on_bad_enum;
        Alcotest.test_case "rule0 invariant" `Quick test_rule0_invariant_holds_always;
        Alcotest.test_case "release blip" `Quick test_controller_release_blip;
        Alcotest.test_case "gentle release no blip" `Quick
          test_controller_gentle_release_no_blip;
        Alcotest.test_case "reset" `Quick test_controller_reset;
        Alcotest.test_case "headway time" `Quick test_headway_time;
        QCheck_alcotest.to_alcotest controller_outputs_consistent ] ) ]
