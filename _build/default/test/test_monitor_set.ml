open Monitor_mtl
open Helpers

let specs () =
  [ Spec.make ~name:"a" (Parser.formula_of_string_exn "p");
    Spec.make ~name:"b" (Parser.formula_of_string_exn "x < 1.0");
    Spec.make ~name:"c" (Parser.formula_of_string_exn "eventually[0.0, 0.02] p") ]

let series =
  uniform ~period:0.01
    [ ("p", [ b true; b false; b false; b false; b true ]);
      ("x", [ f 0.0; f 2.0; f 0.5; f 3.0; f 0.0 ]) ]

let test_counts_violations_per_spec () =
  let set = Monitor_set.create (specs ()) in
  List.iter (fun snap -> ignore (Monitor_set.step set snap)) series;
  ignore (Monitor_set.finalize set);
  let v = Monitor_set.violations set in
  Alcotest.(check (option int)) "a: p false thrice" (Some 3) (List.assoc_opt "a" v);
  Alcotest.(check (option int)) "b: x >= 1 twice" (Some 2) (List.assoc_opt "b" v);
  (* c: eventually p within 0.02: only tick 1's window misses p (ticks 2
     and 3 see the p at t=0.04). *)
  Alcotest.(check (option int)) "c" (Some 1) (List.assoc_opt "c" v)

let test_callback_fires_live () =
  let seen = ref [] in
  let set =
    Monitor_set.create
      ~on_violation:(fun e ->
        seen := (e.Monitor_set.spec.Spec.name,
                 e.Monitor_set.resolution.Online.time) :: !seen)
      (specs ())
  in
  List.iter (fun snap -> ignore (Monitor_set.step set snap)) series;
  ignore (Monitor_set.finalize set);
  Alcotest.(check int) "six callbacks" 6 (List.length !seen);
  (* Immediate specs resolve at their own tick. *)
  Alcotest.(check bool) "a's first violation at 0.01" true
    (List.mem ("a", 0.01) !seen)

let test_events_match_individual_monitors () =
  let all_specs = specs () in
  let set = Monitor_set.create all_specs in
  let set_events =
    let streamed = List.concat_map (fun snap -> Monitor_set.step set snap) series in
    streamed @ Monitor_set.finalize set
  in
  List.iter
    (fun spec ->
      let solo = Online.create spec in
      let solo_res =
        let streamed = List.concat_map (fun snap -> Online.step solo snap) series in
        streamed @ Online.finalize solo
      in
      let from_set =
        List.filter_map
          (fun e ->
            if String.equal e.Monitor_set.spec.Spec.name spec.Spec.name then
              Some e.Monitor_set.resolution
            else None)
          set_events
      in
      Alcotest.(check int) (spec.Spec.name ^ " same resolution count")
        (List.length solo_res) (List.length from_set);
      List.iter2
        (fun (a : Online.resolution) (b : Online.resolution) ->
          Alcotest.(check int) "tick" a.Online.tick b.Online.tick;
          Alcotest.(check bool) "verdict" true
            (Verdict.equal a.Online.verdict b.Online.verdict))
        solo_res from_set)
    all_specs

let test_specs_accessor () =
  let set = Monitor_set.create (specs ()) in
  Alcotest.(check (list string)) "order kept" [ "a"; "b"; "c" ]
    (List.map (fun s -> s.Spec.name) (Monitor_set.specs set))

let suite =
  [ ( "monitor_set",
      [ Alcotest.test_case "violation counts" `Quick test_counts_violations_per_spec;
        Alcotest.test_case "live callbacks" `Quick test_callback_fires_live;
        Alcotest.test_case "matches solo monitors" `Quick
          test_events_match_individual_monitors;
        Alcotest.test_case "specs accessor" `Quick test_specs_accessor ] ) ]
