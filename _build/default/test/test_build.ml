(* The embedded DSL must agree with the textual language. *)

open Monitor_mtl

let formula_t = Alcotest.testable Formula.pp Formula.equal

let check name built src =
  Alcotest.check formula_t name (Parser.formula_of_string_exn src) built

let test_atoms () =
  check "comparison" Build.(var "x" <. float 1.0) "x < 1.0";
  check "bool signal" Build.(signal "p") "p";
  check "fresh" Build.(fresh "p") "fresh(p)";
  check "known" Build.(known "p") "known(p)";
  check "mode" Build.(mode "m" "s") "mode(m, s)";
  check "constants" Build.(tt &&& ff) "true and false"

let test_expressions () =
  check "arith"
    Build.((var "x" +. float 1.0) *. var "y" >=. float 2.0)
    "(x + 1.0) * y >= 2.0";
  check "functions"
    Build.(abs (min_ (var "a") (var "b")) <>. float 0.0)
    "abs(min(a, b)) != 0.0";
  check "change ops"
    Build.(fresh_delta "t" <=. delta (prev (var "x")))
    "fresh_delta(t) <= delta(prev(x))";
  check "rate and age"
    Build.(rate (var "v") >. age "v")
    "rate(v) > age(v)";
  check "negation" Build.(neg (var "x") <. float 0.0) "-x < 0.0"

let test_temporal () =
  check "always" Build.(always ~within:5.0 (signal "p")) "always[0.0, 5.0] p";
  check "bounded from"
    Build.(eventually ~from:0.1 ~within:0.4 (signal "p"))
    "eventually[0.1, 0.4] p";
  check "past"
    Build.(once ~within:2.0 (signal "p") &&& historically ~within:1.0 (signal "q"))
    "once[0.0, 2.0] p and historically[0.0, 1.0] q";
  check "warmup"
    Build.(warmup ~trigger:(signal "t") ~hold:0.5 (signal "b"))
    "warmup(t, 0.5, b)"

let test_rule5_shape () =
  check "paper rule 5"
    Build.(signal "BrakeRequested" ==> (var "RequestedDecel" <=. float 0.0))
    (Monitor_oracle.Rules.source 5)

let test_conj_disj () =
  check "conj" Build.(conj [ signal "a"; signal "b"; signal "c" ]) "a and b and c";
  check "disj" Build.(disj [ signal "a"; signal "b" ]) "a or b";
  Alcotest.check formula_t "empty conj" Build.tt (Build.conj []);
  Alcotest.check formula_t "empty disj" Build.ff (Build.disj [])

let test_built_formula_monitors () =
  (* End to end: a built formula runs through the oracle. *)
  let spec =
    Spec.make ~name:"built"
      Build.(signal "p" ==> eventually ~within:0.02 (var "x" >. float 1.0))
  in
  let series =
    Helpers.uniform ~period:0.01
      [ ("p", [ Helpers.b true; Helpers.b false; Helpers.b false ]);
        ("x", [ Helpers.f 0.0; Helpers.f 0.5; Helpers.f 2.0 ]) ]
  in
  let outcome = Offline.eval spec series in
  Alcotest.(check bool) "resolved true at tick 0" true
    (Verdict.equal outcome.Offline.verdicts.(0) Verdict.True)

let suite =
  [ ( "build",
      [ Alcotest.test_case "atoms" `Quick test_atoms;
        Alcotest.test_case "expressions" `Quick test_expressions;
        Alcotest.test_case "temporal" `Quick test_temporal;
        Alcotest.test_case "rule 5 shape" `Quick test_rule5_shape;
        Alcotest.test_case "conj/disj" `Quick test_conj_disj;
        Alcotest.test_case "end to end" `Quick test_built_formula_monitors ] ) ]
