open Monitor_mtl
open Helpers

let parse = Parser.formula_of_string_exn

let spec ?machines name formula = Spec.make ?machines ~name formula

let verdicts_of ?machines formula_src snapshots =
  let s = spec ?machines "test" (parse formula_src) in
  (Offline.eval s snapshots).Offline.verdicts

(* Verdict algebra -------------------------------------------------------- *)

let test_kleene_tables () =
  let open Verdict in
  Alcotest.check verdict_t "F and ? = F" False (and_ False Unknown);
  Alcotest.check verdict_t "? and T = ?" Unknown (and_ Unknown True);
  Alcotest.check verdict_t "T or ? = T" True (or_ True Unknown);
  Alcotest.check verdict_t "? or F = ?" Unknown (or_ Unknown False);
  Alcotest.check verdict_t "not ? = ?" Unknown (not_ Unknown);
  Alcotest.check verdict_t "F -> ? = T" True (implies False Unknown);
  Alcotest.check verdict_t "? -> F = ?" Unknown (implies Unknown False);
  Alcotest.check verdict_t "conj empty" True (conj []);
  Alcotest.check verdict_t "disj empty" False (disj [])

(* Expressions ------------------------------------------------------------ *)

let eval_series expr series =
  let ev = Expr.evaluator expr in
  List.map (fun s -> Expr.eval ev s) series

let test_expr_signal_and_arith () =
  let e =
    match Parser.expr_of_string "2.0 * x + 1.0" with
    | Ok e -> e
    | Error m -> Alcotest.fail m
  in
  let series = uniform ~period:0.01 [ ("x", [ f 1.0; f 2.0 ]) ] in
  match eval_series e series with
  | [ Expr.Defined a; Expr.Defined b ] ->
    Alcotest.(check (float 1e-9)) "t0" 3.0 a;
    Alcotest.(check (float 1e-9)) "t1" 5.0 b
  | _ -> Alcotest.fail "expected defined values"

let test_expr_prev_delta () =
  let series = uniform ~period:0.01 [ ("x", [ f 1.0; f 3.0; f 6.0 ]) ] in
  (match eval_series (Expr.Prev (Expr.Signal "x")) series with
   | [ Expr.Undefined; Expr.Defined a; Expr.Defined b ] ->
     Alcotest.(check (float 1e-9)) "prev t1" 1.0 a;
     Alcotest.(check (float 1e-9)) "prev t2" 3.0 b
   | _ -> Alcotest.fail "prev shape");
  match eval_series (Expr.Delta (Expr.Signal "x")) series with
  | [ Expr.Undefined; Expr.Defined a; Expr.Defined b ] ->
    Alcotest.(check (float 1e-9)) "delta t1" 2.0 a;
    Alcotest.(check (float 1e-9)) "delta t2" 3.0 b
  | _ -> Alcotest.fail "delta shape"

let test_expr_rate () =
  let series = uniform ~period:0.5 [ ("x", [ f 0.0; f 1.0 ]) ] in
  match eval_series (Expr.Rate (Expr.Signal "x")) series with
  | [ Expr.Undefined; Expr.Defined r ] ->
    Alcotest.(check (float 1e-9)) "units per second" 2.0 r
  | _ -> Alcotest.fail "rate shape"

let test_expr_fresh_delta_vs_delta () =
  (* x published every other tick: the naive delta sees zero change on hold
     ticks; fresh_delta differences the fresh samples. *)
  let series =
    snaps
      [ (0.00, [ ("x", f 10.0) ]);
        (0.01, []);
        (0.02, [ ("x", f 14.0) ]);
        (0.03, []) ]
  in
  (match eval_series (Expr.Delta (Expr.Signal "x")) series with
   | [ Expr.Undefined; Expr.Defined d1; Expr.Defined d2; Expr.Defined d3 ] ->
     Alcotest.(check (float 1e-9)) "hold looks constant" 0.0 d1;
     Alcotest.(check (float 1e-9)) "jump at refresh" 4.0 d2;
     Alcotest.(check (float 1e-9)) "constant again" 0.0 d3
   | _ -> Alcotest.fail "delta shape");
  match eval_series (Expr.Fresh_delta "x") series with
  | [ Expr.Undefined; Expr.Undefined; Expr.Defined d2; Expr.Defined d3 ] ->
    Alcotest.(check (float 1e-9)) "fresh delta" 4.0 d2;
    Alcotest.(check (float 1e-9)) "held fresh delta" 4.0 d3
  | _ -> Alcotest.fail "fresh_delta shape"

let test_expr_missing_signal () =
  let series = uniform ~period:0.01 [ ("x", [ f 1.0 ]) ] in
  match eval_series (Expr.Signal "ghost") series with
  | [ Expr.Undefined ] -> ()
  | _ -> Alcotest.fail "unknown signal must be undefined"

let test_expr_nan_propagates_as_value () =
  let series = uniform ~period:0.01 [ ("x", [ f Float.nan ]) ] in
  match eval_series (Expr.Add (Expr.Signal "x", Expr.Const 1.0)) series with
  | [ Expr.Defined v ] -> Alcotest.(check bool) "nan is a value" true (Float.is_nan v)
  | _ -> Alcotest.fail "expected defined nan"

(* Immediate formulas ------------------------------------------------------ *)

let test_cmp_nan_semantics () =
  let series = uniform ~period:0.01 [ ("d", [ f Float.nan ]) ] in
  let v = verdicts_of "d <= 0.0" series in
  Alcotest.check verdict_t "nan fails <=" Verdict.False v.(0);
  let v = verdicts_of "not (d <= 0.0)" series in
  Alcotest.check verdict_t "negation is true" Verdict.True v.(0)

let test_cmp_unknown_when_missing () =
  let series = uniform ~period:0.01 [ ("x", [ f 1.0 ]) ] in
  let v = verdicts_of "ghost <= 0.0" series in
  Alcotest.check verdict_t "missing -> unknown" Verdict.Unknown v.(0)

let test_bool_signal_and_connectives () =
  let series =
    uniform ~period:0.01
      [ ("p", [ b true; b true; b false ]); ("q", [ b false; b true; b true ]) ]
  in
  let v = verdicts_of "p and q" series in
  Alcotest.check verdict_t "t0" Verdict.False v.(0);
  Alcotest.check verdict_t "t1" Verdict.True v.(1);
  Alcotest.check verdict_t "t2" Verdict.False v.(2);
  let v = verdicts_of "p -> q" series in
  Alcotest.check verdict_t "imp t0" Verdict.False v.(0);
  Alcotest.check verdict_t "imp t2 (vacuous)" Verdict.True v.(2)

let test_fresh_known () =
  let series =
    snaps [ (0.0, [ ("x", f 1.0) ]); (0.01, []); (0.02, [ ("x", f 2.0) ]) ]
  in
  let v = verdicts_of "fresh(x)" series in
  Alcotest.check verdict_t "fresh at t0" Verdict.True v.(0);
  Alcotest.check verdict_t "held at t1" Verdict.False v.(1);
  Alcotest.check verdict_t "fresh at t2" Verdict.True v.(2);
  let v = verdicts_of "known(ghost)" series in
  Alcotest.check verdict_t "never seen" Verdict.False v.(0)

(* Temporal operators ------------------------------------------------------ *)

let test_always_bounded () =
  (* p true until 0.03, false at 0.04 *)
  let series =
    uniform ~period:0.01 [ ("p", [ b true; b true; b true; b true; b false ]) ]
  in
  let v = verdicts_of "always[0.0, 0.02] p" series in
  Alcotest.check verdict_t "window all true" Verdict.True v.(0);
  Alcotest.check verdict_t "window hits false" Verdict.False v.(2);
  Alcotest.check verdict_t "false dominates incomplete window" Verdict.False v.(3);
  Alcotest.check verdict_t "false now" Verdict.False v.(4);
  (* With no False around, an incomplete window is Unknown. *)
  let all_true = uniform ~period:0.01 [ ("p", [ b true; b true; b true ]) ] in
  let v = verdicts_of "always[0.0, 0.02] p" all_true in
  Alcotest.check verdict_t "complete all-true" Verdict.True v.(0);
  Alcotest.check verdict_t "incomplete window unknown" Verdict.Unknown v.(1)

let test_eventually_bounded () =
  let series =
    uniform ~period:0.01 [ ("p", [ b false; b false; b true; b false; b false ]) ]
  in
  let v = verdicts_of "eventually[0.0, 0.02] p" series in
  Alcotest.check verdict_t "found ahead" Verdict.True v.(0);
  Alcotest.check verdict_t "found now" Verdict.True v.(2);
  Alcotest.check verdict_t "complete window without p" Verdict.Unknown v.(3);
  (* t3's window [0.03,0.05] runs past the trace end -> Unknown;
     t2 window [0.02,0.04] complete -> True (p at 0.02). *)
  let v = verdicts_of "eventually[0.0, 0.01] p" series in
  Alcotest.check verdict_t "complete, no p" Verdict.False v.(3)

let test_once_warmup_unknown () =
  let series = uniform ~period:0.01 [ ("p", [ b false; b false; b false ]) ] in
  let v = verdicts_of "once[0.0, 0.05] p" series in
  (* Past window truncated by trace start: cannot rule out an earlier p. *)
  Alcotest.check verdict_t "truncated past" Verdict.Unknown v.(0);
  let series = uniform ~period:0.01 [ ("p", [ b true; b false; b false ]) ] in
  let v = verdicts_of "once[0.0, 0.05] p" series in
  Alcotest.check verdict_t "true decides" Verdict.True v.(2)

let test_once_complete_false () =
  let series =
    uniform ~period:0.01 [ ("p", [ b false; b false; b false; b false ]) ]
  in
  let v = verdicts_of "once[0.0, 0.01] p" series in
  Alcotest.check verdict_t "complete empty past" Verdict.False v.(2)

let test_historically () =
  let series =
    uniform ~period:0.01 [ ("p", [ b true; b true; b false; b true ]) ]
  in
  let v = verdicts_of "historically[0.0, 0.01] p" series in
  Alcotest.check verdict_t "all true" Verdict.True v.(1);
  Alcotest.check verdict_t "false in window" Verdict.False v.(2);
  Alcotest.check verdict_t "false still in window" Verdict.False v.(3)

let test_nested_temporal () =
  (* "whenever p, q within 0.02" — the paper's Rule #1 shape. *)
  let series =
    uniform ~period:0.01
      [ ("p", [ b true; b false; b false; b false ]);
        ("q", [ b false; b false; b true; b false ]) ]
  in
  let v = verdicts_of "p -> eventually[0.0, 0.02] q" series in
  Alcotest.check verdict_t "recovered in time" Verdict.True v.(0);
  let series =
    uniform ~period:0.01
      [ ("p", [ b true; b false; b false; b false ]);
        ("q", [ b false; b false; b false; b true ]) ]
  in
  let v = verdicts_of "p -> eventually[0.0, 0.02] q" series in
  Alcotest.check verdict_t "recovered too late" Verdict.False v.(0)

let test_warmup_suppression () =
  let series =
    uniform ~period:0.01
      [ ("trig", [ b true; b false; b false; b false ]);
        ("bad", [ b true; b true; b true; b true ]) ]
  in
  let v = verdicts_of "warmup(trig, 0.015, not bad)" series in
  Alcotest.check verdict_t "suppressed at trigger" Verdict.Unknown v.(0);
  Alcotest.check verdict_t "suppressed within hold" Verdict.Unknown v.(1);
  Alcotest.check verdict_t "live after hold" Verdict.False v.(2)

let test_empty_snapshot_stream () =
  let v = verdicts_of "true" [] in
  Alcotest.(check int) "no verdicts" 0 (Array.length v)

(* State machines ---------------------------------------------------------- *)

let engagement_machine =
  State_machine.make ~name:"acc" ~initial:"off"
    ~states:[ "off"; "engaged" ]
    ~transitions:
      [ { State_machine.source = "off";
          guard = State_machine.When (parse "enabled");
          target = "engaged" };
        { State_machine.source = "engaged";
          guard = State_machine.When (parse "not enabled");
          target = "off" } ]

let test_state_machine_transitions () =
  let series =
    uniform ~period:0.01
      [ ("enabled", [ b false; b true; b true; b false; b true ]) ]
  in
  let s =
    spec ~machines:[ engagement_machine ] "m" (parse "mode(acc, engaged)")
  in
  let out = Offline.eval s series in
  let expected = [| Verdict.False; Verdict.True; Verdict.True; Verdict.False; Verdict.True |] in
  Array.iteri
    (fun i e -> Alcotest.check verdict_t (Printf.sprintf "tick %d" i) e out.Offline.verdicts.(i))
    expected

let test_state_machine_timeout () =
  (* Rule #1 shape as a machine: low headway must recover within 0.05 s. *)
  let machine =
    State_machine.make ~name:"headway" ~initial:"ok"
      ~states:[ "ok"; "low"; "violated" ]
      ~transitions:
        [ { State_machine.source = "ok";
            guard = State_machine.When (parse "h < 1.0");
            target = "low" };
          { State_machine.source = "low";
            guard = State_machine.When (parse "h >= 1.0");
            target = "ok" };
          { State_machine.source = "low";
            guard = State_machine.After 0.05;
            target = "violated" } ]
  in
  let run hs =
    let series = uniform ~period:0.01 [ ("h", List.map f hs) ] in
    let s = spec ~machines:[ machine ] "m" (parse "not mode(headway, violated)") in
    (Offline.eval s series).Offline.verdicts
  in
  (* Recovers in time: 0.02s low. *)
  let v = run [ 2.0; 0.5; 0.5; 1.5; 1.5; 1.5; 1.5; 1.5 ] in
  Alcotest.(check int) "no violation" 0 (Offline.count v Verdict.False);
  (* Stays low too long. *)
  let v = run [ 2.0; 0.5; 0.5; 0.5; 0.5; 0.5; 0.5; 0.5; 0.5 ] in
  Alcotest.(check bool) "violated eventually" true
    (Offline.count v Verdict.False > 0)

let test_state_machine_validation () =
  Alcotest.(check bool) "undeclared target" true
    (try
       ignore
         (State_machine.make ~name:"m" ~initial:"a" ~states:[ "a" ]
            ~transitions:
              [ { State_machine.source = "a";
                  guard = State_machine.After 1.0;
                  target = "zz" } ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "temporal guard rejected" true
    (try
       ignore
         (State_machine.make ~name:"m" ~initial:"a" ~states:[ "a" ]
            ~transitions:
              [ { State_machine.source = "a";
                  guard = State_machine.When (parse "always[0.0,1.0] x < 1.0");
                  target = "a" } ]);
       false
     with Invalid_argument _ -> true)

let test_spec_validation () =
  Alcotest.(check bool) "unknown machine in formula" true
    (try
       ignore (spec "s" (parse "mode(ghost, on)"));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown state in formula" true
    (try
       ignore (spec ~machines:[ engagement_machine ] "s" (parse "mode(acc, ghost)"));
       false
     with Invalid_argument _ -> true)

(* Parser ------------------------------------------------------------------- *)

let formula_t = Alcotest.testable Formula.pp Formula.equal

let test_parser_precedence () =
  let got = parse "a or b and not c -> d" in
  let expected =
    Formula.Implies
      ( Formula.Or
          ( Formula.Bool_signal "a",
            Formula.And (Formula.Bool_signal "b", Formula.Not (Formula.Bool_signal "c")) ),
        Formula.Bool_signal "d" )
  in
  Alcotest.check formula_t "precedence" expected got

let test_parser_comparison_vs_paren () =
  let got = parse "(x + 1.0) < 2.0" in
  (match got with
   | Formula.Cmp (Expr.Add (Expr.Signal "x", Expr.Const 1.0), Formula.Lt, Expr.Const 2.0) -> ()
   | _ -> Alcotest.fail "paren expression comparison");
  let got = parse "(x < 1.0) and y" in
  match got with
  | Formula.And (Formula.Cmp _, Formula.Bool_signal "y") -> ()
  | _ -> Alcotest.fail "paren formula"

let test_parser_intervals () =
  match parse "always[0.5, 5.0] p" with
  | Formula.Always (i, Formula.Bool_signal "p") ->
    Alcotest.(check (float 0.0)) "lo" 0.5 i.Formula.lo;
    Alcotest.(check (float 0.0)) "hi" 5.0 i.Formula.hi
  | _ -> Alcotest.fail "interval shape"

let test_parser_errors () =
  let bad = [ "always[5.0, 1.0] p"; "x <"; "(x"; "warmup(p, -1.0, q)"; "1.0"; "" ] in
  List.iter
    (fun src ->
      match Parser.formula_of_string src with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("should not parse: " ^ src))
    bad

let test_parser_comments_whitespace () =
  match Parser.formula_of_string "p # trailing comment\n  and q" with
  | Ok (Formula.And (Formula.Bool_signal "p", Formula.Bool_signal "q")) -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error m -> Alcotest.fail m

let test_parser_roundtrip_examples () =
  let sources =
    [ "p and (q or not r)";
      "x + 1.0 < 2.0 * y";
      "always[0.0, 5.0] (low -> eventually[0.0, 5.0] ok)";
      "warmup(fresh(x), 0.5, delta(x) >= 0.0)";
      "mode(acc, engaged) -> rate(v) <= 3.0";
      "historically[0.0, 1.0] (once[0.0, 2.0] p -> q)";
      "abs(min(a, b) - max(a, b)) != 0.0";
      "fresh_delta(range) > -1.0 or age(range) < 0.2" ]
  in
  List.iter
    (fun src ->
      let f = parse src in
      let printed = Formula.to_string f in
      let f' = parse printed in
      Alcotest.check formula_t ("roundtrip: " ^ src) f f')
    sources

(* Online ≡ offline ---------------------------------------------------------- *)

let run_online s snapshots =
  let m = Online.create s in
  let streamed = List.concat_map (fun snap -> Online.step m snap) snapshots in
  let resolved = streamed @ Online.finalize m in
  let sorted = List.sort (fun a b -> compare a.Online.tick b.Online.tick) resolved in
  Array.of_list (List.map (fun r -> r.Online.verdict) sorted)

let check_equiv ?machines name formula_src series =
  let s = spec ?machines name (parse formula_src) in
  let offline = (Offline.eval s series).Offline.verdicts in
  let online = run_online s series in
  Alcotest.(check int) (name ^ ": same count") (Array.length offline)
    (Array.length online);
  Array.iteri
    (fun i v ->
      Alcotest.check verdict_t (Printf.sprintf "%s tick %d" name i) v online.(i))
    offline

let test_online_equiv_basic () =
  let series =
    uniform ~period:0.01
      [ ("p", [ b true; b false; b true; b true; b false; b true ]);
        ("x", [ f 1.0; f 2.0; f 0.5; f 3.0; f 0.1; f 9.0 ]) ]
  in
  List.iter
    (fun src -> check_equiv "basic" src series)
    [ "p";
      "x < 2.0";
      "p and x < 2.0";
      "not p or x >= 1.0";
      "always[0.0, 0.02] p";
      "eventually[0.0, 0.03] (x > 2.0)";
      "once[0.01, 0.03] p";
      "historically[0.0, 0.02] (x < 10.0)";
      "p -> eventually[0.0, 0.02] (x > 2.0)";
      "warmup(p, 0.02, x < 2.0)";
      "delta(x) > 0.0";
      "always[0.0, 0.02] eventually[0.0, 0.02] p" ]

let test_online_incremental_resolution () =
  let s = spec "inc" (parse "eventually[0.0, 0.05] p") in
  let m = Online.create s in
  let series =
    uniform ~period:0.01 [ ("p", [ b false; b false; b true; b false ]) ]
  in
  match series with
  | [ s0; s1; s2; s3 ] ->
    Alcotest.(check int) "t0 pending" 0 (List.length (Online.step m s0));
    Alcotest.(check int) "t1 pending" 0 (List.length (Online.step m s1));
    (* p at t2 resolves ticks 0,1,2 at once (True dominates). *)
    let r = Online.step m s2 in
    Alcotest.(check int) "resolved at t2" 3 (List.length r);
    List.iter
      (fun res -> Alcotest.check verdict_t "all true" Verdict.True res.Online.verdict)
      r;
    ignore (Online.step m s3);
    let rest = Online.finalize m in
    Alcotest.(check int) "t3 at finalize" 1 (List.length rest);
    Alcotest.check verdict_t "t3 unknown" Verdict.Unknown
      (List.hd rest).Online.verdict
  | _ -> Alcotest.fail "series shape"

(* Random formulas + random traces: online must equal offline. ------------- *)

let gen_formula : Formula.t QCheck.Gen.t =
  let open QCheck.Gen in
  let signal = oneofl [ "p"; "q"; "x"; "y" ] in
  let atom =
    oneof
      [ map (fun s -> Formula.Bool_signal s) (oneofl [ "p"; "q" ]);
        map (fun s -> Formula.Fresh s) signal;
        map2
          (fun s c -> Formula.Cmp (Expr.Signal s, Formula.Lt, Expr.Const c))
          (oneofl [ "x"; "y" ])
          (float_range (-2.0) 2.0);
        map
          (fun s -> Formula.Cmp (Expr.Delta (Expr.Signal s), Formula.Ge, Expr.Const 0.0))
          (oneofl [ "x"; "y" ]);
        map
          (fun s ->
            Formula.Cmp (Expr.Fresh_delta s, Formula.Gt, Expr.Const (-0.5)))
          (oneofl [ "x"; "y" ]) ]
  in
  let interval =
    map2
      (fun lo len -> Formula.interval lo (lo +. len))
      (float_range 0.0 0.03) (float_range 0.0 0.05)
  in
  fix
    (fun self depth ->
      if depth = 0 then atom
      else
        frequency
          [ (2, atom);
            (1, map (fun f -> Formula.Not f) (self (depth - 1)));
            (1, map2 (fun a b -> Formula.And (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun a b -> Formula.Or (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun a b -> Formula.Implies (a, b)) (self (depth - 1)) (self (depth - 1)));
            (1, map2 (fun i f -> Formula.Always (i, f)) interval (self (depth - 1)));
            (1, map2 (fun i f -> Formula.Eventually (i, f)) interval (self (depth - 1)));
            (1, map2 (fun i f -> Formula.Once (i, f)) interval (self (depth - 1)));
            (1, map2 (fun i f -> Formula.Historically (i, f)) interval (self (depth - 1)));
            ( 1,
              map3
                (fun t h body -> Formula.Warmup { trigger = t; hold = h; body })
                (self 0) (float_range 0.0 0.04) (self (depth - 1)) ) ])
    3

let gen_series : Monitor_trace.Snapshot.t list QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 1 25 in
  let* bools = list_repeat n (pair bool bool) in
  let* floats =
    list_repeat n (pair (float_range (-2.0) 2.0) (float_range (-2.0) 2.0))
  in
  let* fresh_mask = list_repeat n (pair bool bool) in
  let updates =
    List.mapi
      (fun i (((pb, qb), (xv, yv)), (fx, fy)) ->
        let time = float_of_int i *. 0.01 in
        let fresh =
          [ ("p", Helpers.b pb); ("q", Helpers.b qb) ]
          @ (if fx || i = 0 then [ ("x", Helpers.f xv) ] else [])
          @ if fy || i = 0 then [ ("y", Helpers.f yv) ] else []
        in
        (time, fresh))
      (List.combine (List.combine bools floats) fresh_mask)
  in
  return (snaps updates)

let online_equals_offline =
  QCheck.Test.make ~name:"online monitor equals offline semantics" ~count:300
    (QCheck.make
       ~print:(fun (f, series) ->
         Printf.sprintf "%s over %d ticks" (Formula.to_string f) (List.length series))
       QCheck.Gen.(pair gen_formula gen_series))
    (fun (formula, series) ->
      let s = spec "prop" formula in
      let offline = (Offline.eval s series).Offline.verdicts in
      let online = run_online s series in
      Array.length offline = Array.length online
      && Array.for_all2 Verdict.equal offline online)

let parser_roundtrip_prop =
  QCheck.Test.make ~name:"printed formulas reparse to themselves" ~count:300
    (QCheck.make ~print:Formula.to_string gen_formula)
    (fun f ->
      match Parser.formula_of_string (Formula.to_string f) with
      | Ok f' -> Formula.equal f f'
      | Error _ -> false)

let suite =
  [ ( "mtl",
      [ Alcotest.test_case "kleene tables" `Quick test_kleene_tables;
        Alcotest.test_case "expr arith" `Quick test_expr_signal_and_arith;
        Alcotest.test_case "expr prev/delta" `Quick test_expr_prev_delta;
        Alcotest.test_case "expr rate" `Quick test_expr_rate;
        Alcotest.test_case "expr fresh_delta vs delta" `Quick
          test_expr_fresh_delta_vs_delta;
        Alcotest.test_case "expr missing signal" `Quick test_expr_missing_signal;
        Alcotest.test_case "expr nan value" `Quick test_expr_nan_propagates_as_value;
        Alcotest.test_case "cmp nan semantics" `Quick test_cmp_nan_semantics;
        Alcotest.test_case "cmp unknown" `Quick test_cmp_unknown_when_missing;
        Alcotest.test_case "bool connectives" `Quick test_bool_signal_and_connectives;
        Alcotest.test_case "fresh/known" `Quick test_fresh_known;
        Alcotest.test_case "always bounded" `Quick test_always_bounded;
        Alcotest.test_case "eventually bounded" `Quick test_eventually_bounded;
        Alcotest.test_case "once warmup unknown" `Quick test_once_warmup_unknown;
        Alcotest.test_case "once complete false" `Quick test_once_complete_false;
        Alcotest.test_case "historically" `Quick test_historically;
        Alcotest.test_case "nested temporal" `Quick test_nested_temporal;
        Alcotest.test_case "warmup suppression" `Quick test_warmup_suppression;
        Alcotest.test_case "empty stream" `Quick test_empty_snapshot_stream;
        Alcotest.test_case "machine transitions" `Quick test_state_machine_transitions;
        Alcotest.test_case "machine timeout" `Quick test_state_machine_timeout;
        Alcotest.test_case "machine validation" `Quick test_state_machine_validation;
        Alcotest.test_case "spec validation" `Quick test_spec_validation;
        Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
        Alcotest.test_case "parser comparison vs paren" `Quick
          test_parser_comparison_vs_paren;
        Alcotest.test_case "parser intervals" `Quick test_parser_intervals;
        Alcotest.test_case "parser errors" `Quick test_parser_errors;
        Alcotest.test_case "parser comments" `Quick test_parser_comments_whitespace;
        Alcotest.test_case "parser roundtrip examples" `Quick
          test_parser_roundtrip_examples;
        Alcotest.test_case "online equiv basic" `Quick test_online_equiv_basic;
        Alcotest.test_case "online incremental" `Quick test_online_incremental_resolution;
        QCheck_alcotest.to_alcotest online_equals_offline;
        QCheck_alcotest.to_alcotest parser_roundtrip_prop ] ) ]
