open Monitor_trace
module Value = Monitor_signal.Value

let trace_of records = Trace.of_list records

let rcd time name value = Record.make ~time ~name ~value

let test_basic_stats () =
  let t =
    trace_of
      [ rcd 0.00 "x" (Value.Float 1.0);
        rcd 0.01 "x" (Value.Float 3.0);
        rcd 0.02 "x" (Value.Float 2.0);
        rcd 0.00 "b" (Value.Bool true) ]
  in
  let a = Analyze.analyze t in
  Alcotest.(check int) "records" 4 a.Analyze.records;
  match Analyze.find a "x" with
  | None -> Alcotest.fail "x missing"
  | Some s ->
    Alcotest.(check int) "samples" 3 s.Analyze.samples;
    Alcotest.(check (float 1e-9)) "mean period" 0.01 s.Analyze.mean_period;
    Alcotest.(check (option (float 1e-9))) "min" (Some 1.0) s.Analyze.value_min;
    Alcotest.(check (option (float 1e-9))) "max" (Some 3.0) s.Analyze.value_max;
    Alcotest.(check (option (float 1e-9))) "mean" (Some 2.0) s.Analyze.value_mean;
    Alcotest.(check int) "distinct" 3 s.Analyze.distinct_values

let test_exceptional_counted () =
  let t =
    trace_of
      [ rcd 0.0 "x" (Value.Float Float.nan);
        rcd 0.1 "x" (Value.Float Float.infinity);
        rcd 0.2 "x" (Value.Float 1.0) ]
  in
  match Analyze.find (Analyze.analyze t) "x" with
  | Some s ->
    Alcotest.(check int) "two exceptional" 2 s.Analyze.exceptional_samples;
    (* Value stats only cover the finite sample. *)
    Alcotest.(check (option (float 0.0))) "finite min" (Some 1.0) s.Analyze.value_min
  | None -> Alcotest.fail "x missing"

let test_single_sample_signal () =
  let t = trace_of [ rcd 0.0 "lonely" (Value.Float 5.0) ] in
  match Analyze.find (Analyze.analyze t) "lonely" with
  | Some s ->
    Alcotest.(check (float 0.0)) "no period" 0.0 s.Analyze.mean_period;
    Alcotest.(check int) "one sample" 1 s.Analyze.samples
  | None -> Alcotest.fail "missing"

let test_on_simulated_capture () =
  (* The structural facts the monitor relies on, read off a real capture:
     fast signals at ~10 ms, slow at ~40 ms, slow jitter visibly larger. *)
  let scenario = Monitor_hil.Scenario.steady_follow ~duration:4.0 () in
  let result = Monitor_hil.Sim.run (Monitor_hil.Sim.default_config scenario) in
  let a = Analyze.analyze result.Monitor_hil.Sim.trace in
  let period name =
    match Analyze.find a name with
    | Some s -> s.Analyze.mean_period
    | None -> Alcotest.fail (name ^ " missing")
  in
  Alcotest.(check bool) "velocity ~10ms" true
    (Float.abs (period "Velocity" -. 0.010) < 0.001);
  Alcotest.(check bool) "torque ~40ms" true
    (Float.abs (period "RequestedTorque" -. 0.040) < 0.004);
  let jitter name =
    match Analyze.find a name with
    | Some s -> s.Analyze.period_stddev
    | None -> Alcotest.fail (name ^ " missing")
  in
  Alcotest.(check bool) "slow messages jitter more" true
    (jitter "RequestedTorque" > jitter "Velocity")

let test_render_nonempty () =
  let t = trace_of [ rcd 0.0 "x" (Value.Float 1.0) ] in
  Alcotest.(check bool) "renders" true
    (String.length (Analyze.render (Analyze.analyze t)) > 40)

let suite =
  [ ( "analyze",
      [ Alcotest.test_case "basic stats" `Quick test_basic_stats;
        Alcotest.test_case "exceptional counted" `Quick test_exceptional_counted;
        Alcotest.test_case "single sample" `Quick test_single_sample_signal;
        Alcotest.test_case "simulated capture" `Quick test_on_simulated_capture;
        Alcotest.test_case "render" `Quick test_render_nonempty ] ) ]
