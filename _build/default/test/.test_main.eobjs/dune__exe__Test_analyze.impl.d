test/test_analyze.ml: Alcotest Analyze Float Monitor_hil Monitor_signal Monitor_trace Record String Trace
