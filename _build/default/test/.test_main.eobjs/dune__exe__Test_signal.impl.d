test/test_signal.ml: Alcotest Def Float Monitor_signal QCheck QCheck_alcotest Value
