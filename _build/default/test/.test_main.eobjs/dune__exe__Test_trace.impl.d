test/test_trace.ml: Alcotest Csv Float List Monitor_signal Monitor_trace Multirate QCheck QCheck_alcotest Record Snapshot String Trace
