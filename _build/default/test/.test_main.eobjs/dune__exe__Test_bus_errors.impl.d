test/test_bus_errors.ml: Alcotest Bus Bytes Frame List Monitor_can Monitor_hil Monitor_oracle Monitor_trace
