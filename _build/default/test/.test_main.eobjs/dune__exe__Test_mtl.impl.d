test/test_mtl.ml: Alcotest Array Expr Float Formula Helpers List Monitor_mtl Monitor_trace Offline Online Parser Printf QCheck QCheck_alcotest Spec State_machine Verdict
