test/test_hil.ml: Alcotest Float List Monitor_fsracc Monitor_hil Monitor_oracle Monitor_signal Monitor_trace Mux Printf Scenario Sim String Typecheck
