test/test_explain.ml: Alcotest Explain Helpers Monitor_hil Monitor_mtl Monitor_oracle Monitor_signal Monitor_trace Parser Spec State_machine String Verdict
