test/test_build.ml: Alcotest Array Build Formula Helpers Monitor_mtl Monitor_oracle Offline Parser Spec Verdict
