test/test_refinement.ml: Array Formula List Monitor_mtl Offline Online Printf QCheck QCheck_alcotest Spec Test_mtl Verdict
