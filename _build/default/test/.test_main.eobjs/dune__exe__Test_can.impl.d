test/test_can.ml: Alcotest Bitfield Bus Bytes Char Coding Crc Dbc Float Frame Int64 List Logger Message Monitor_can Monitor_signal Monitor_trace QCheck QCheck_alcotest Scheduler
