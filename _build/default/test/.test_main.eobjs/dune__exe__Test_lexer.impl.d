test/test_lexer.ml: Alcotest Array Lexer Monitor_mtl String
