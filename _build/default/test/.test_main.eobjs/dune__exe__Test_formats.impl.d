test/test_formats.ml: Alcotest Bytes Candump Dbc Dbc_text Float Frame List Message Monitor_can Monitor_fsracc Monitor_hil Monitor_signal Monitor_trace Option String
