test/test_spec_file.ml: Alcotest Expr Formula List Monitor_mtl Monitor_oracle Monitor_signal Monitor_trace Printf Spec Spec_file State_machine
