test/helpers.ml: Alcotest Hashtbl List Monitor_mtl Monitor_signal Monitor_trace
