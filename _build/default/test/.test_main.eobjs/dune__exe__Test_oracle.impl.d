test/test_oracle.ml: Alcotest Array Float Helpers Intent List Monitor_can Monitor_fsracc Monitor_hil Monitor_mtl Monitor_oracle Monitor_signal Monitor_trace Oracle Printf Report Rules String
