test/test_online_stress.ml: Alcotest Array Helpers Int List Monitor_mtl Monitor_util Offline Online Parser Printf Spec Verdict
