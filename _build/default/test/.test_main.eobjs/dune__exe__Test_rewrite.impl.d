test/test_rewrite.ml: Alcotest Array Expr Formula List Monitor_mtl Offline Parser Printf QCheck QCheck_alcotest Rewrite Spec Test_mtl Verdict
