test/test_monitor_set.ml: Alcotest Helpers List Monitor_mtl Monitor_set Online Parser Spec String Verdict
