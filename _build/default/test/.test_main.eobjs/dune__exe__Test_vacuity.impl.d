test/test_vacuity.ml: Alcotest Helpers List Monitor_hil Monitor_mtl Monitor_oracle Monitor_trace Oracle Rules String Vacuity
