test/test_semantics_edge.ml: Alcotest Array Formula Helpers List Monitor_mtl Offline Parser Spec State_machine Verdict
