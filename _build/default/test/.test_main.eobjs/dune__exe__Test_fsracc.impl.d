test/test_fsracc.ml: Alcotest Controller Float Io List Monitor_can Monitor_fsracc Monitor_signal Monitor_util QCheck QCheck_alcotest
