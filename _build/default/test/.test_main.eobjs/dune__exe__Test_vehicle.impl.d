test/test_vehicle.ml: Actuator Alcotest Dynamics Float Lead Monitor_vehicle Params QCheck QCheck_alcotest Radar Road World
