test/test_util.ml: Alcotest Array Float Float_bits Int64 List Monitor_util Prng QCheck QCheck_alcotest Ring Stats
