test/test_scheduler.ml: Alcotest Bitfield Bus Coding Dbc Frame List Logger Message Monitor_can Monitor_signal Scheduler
