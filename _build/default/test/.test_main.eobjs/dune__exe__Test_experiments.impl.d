test/test_experiments.ml: Alcotest Float Lazy List Monitor_experiments Monitor_inject Monitor_oracle Printf String
