test/test_inject.ml: Alcotest Array Ballista Campaign Fault Float List Monitor_fsracc Monitor_hil Monitor_inject Monitor_signal Monitor_util String
