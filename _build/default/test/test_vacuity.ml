open Monitor_oracle
open Helpers
module Mtl = Monitor_mtl

let spec src = Mtl.Spec.make ~name:"t" (Mtl.Parser.formula_of_string_exn src)

let test_unguarded () =
  let v = Vacuity.analyze_snapshots (spec "p") (uniform ~period:0.01 [ ("p", [ b true ]) ]) in
  Alcotest.(check int) "no guards" 0 (List.length v.Vacuity.guards);
  Alcotest.(check bool) "not vacuous" false v.Vacuity.vacuous

let test_armed_guard () =
  let series =
    uniform ~period:0.01
      [ ("p", [ b false; b true; b true ]); ("q", [ b true; b true; b true ]) ]
  in
  let v = Vacuity.analyze_snapshots (spec "p -> q") series in
  match v.Vacuity.guards with
  | [ g ] ->
    Alcotest.(check int) "armed twice" 2 g.Vacuity.armed_ticks;
    Alcotest.(check int) "three ticks" 3 g.Vacuity.total_ticks;
    Alcotest.(check bool) "not vacuous" false v.Vacuity.vacuous
  | _ -> Alcotest.fail "one guard expected"

let test_vacuous_pass () =
  (* The premise never holds: the rule passes but proves nothing. *)
  let series =
    uniform ~period:0.01
      [ ("p", [ b false; b false ]); ("q", [ b false; b false ]) ]
  in
  let v = Vacuity.analyze_snapshots (spec "p -> q") series in
  Alcotest.(check bool) "vacuous" true v.Vacuity.vacuous;
  (* And indeed the oracle reports Satisfied. *)
  let trace =
    Monitor_trace.Trace.of_list
      [ Monitor_trace.Record.make ~time:0.0 ~name:"p" ~value:(b false);
        Monitor_trace.Record.make ~time:0.0 ~name:"q" ~value:(b false) ]
  in
  Alcotest.(check bool) "satisfied" true
    ((Oracle.check_spec (spec "p -> q") trace).Oracle.status = Oracle.Satisfied)

let test_descends_wrappers () =
  let series =
    uniform ~period:0.01 [ ("p", [ b true ]); ("q", [ b true ]); ("r", [ b true ]) ]
  in
  let v =
    Vacuity.analyze_snapshots
      (spec "always[0.0, 1.0] ((p -> q) and (r -> q))")
      series
  in
  Alcotest.(check int) "two guards found" 2 (List.length v.Vacuity.guards)

let test_paper_rules_on_nominal_hil () =
  (* On the nominal Table I workload, rules 0 and 6 are vacuously
     satisfied (no fault, no extremely-close target) while rule 1's
     premise also never arms.  Rule 5's premise (BrakeRequested) does arm
     during normal gap control.  This is exactly the §III-C coverage
     caveat: a clean campaign row does not mean every rule was tested. *)
  let scenario = Monitor_hil.Scenario.steady_follow ~duration:10.0 () in
  let result = Monitor_hil.Sim.run (Monitor_hil.Sim.default_config scenario) in
  let vacuity n =
    (Vacuity.analyze (Rules.rule n) result.Monitor_hil.Sim.trace).Vacuity.vacuous
  in
  Alcotest.(check bool) "rule 0 vacuous without faults" true (vacuity 0);
  Alcotest.(check bool) "rule 6 vacuous without near-collision" true (vacuity 6)

let test_render () =
  let series = uniform ~period:0.01 [ ("p", [ b false ]); ("q", [ b true ]) ] in
  let v = Vacuity.analyze_snapshots (spec "p -> q") series in
  let text = Vacuity.render v in
  Alcotest.(check bool) "mentions vacuous" true
    (String.length text > 0
    &&
    let rec contains i =
      i + 7 <= String.length text
      && (String.sub text i 7 = "VACUOUS" || contains (i + 1))
    in
    contains 0)

let suite =
  [ ( "vacuity",
      [ Alcotest.test_case "unguarded" `Quick test_unguarded;
        Alcotest.test_case "armed guard" `Quick test_armed_guard;
        Alcotest.test_case "vacuous pass" `Quick test_vacuous_pass;
        Alcotest.test_case "descends wrappers" `Quick test_descends_wrappers;
        Alcotest.test_case "paper rules nominal" `Slow
          test_paper_rules_on_nominal_hil;
        Alcotest.test_case "render" `Quick test_render ] ) ]
