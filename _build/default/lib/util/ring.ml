type 'a t = {
  mutable data : 'a option array;
  mutable head : int; (* index of oldest element *)
  mutable len : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { data = Array.make capacity None; head = 0; len = 0 }

let capacity r = Array.length r.data

let length r = r.len

let is_empty r = r.len = 0

let is_full r = r.len = capacity r

let phys_index r i = (r.head + i) mod capacity r

let push r x =
  let cap = capacity r in
  if r.len < cap then begin
    r.data.(phys_index r r.len) <- Some x;
    r.len <- r.len + 1;
    None
  end
  else begin
    let evicted = r.data.(r.head) in
    r.data.(r.head) <- Some x;
    r.head <- (r.head + 1) mod cap;
    evicted
  end

let oldest r = if r.len = 0 then None else r.data.(r.head)

let newest r = if r.len = 0 then None else r.data.(phys_index r (r.len - 1))

let get r i =
  if i < 0 || i >= r.len then invalid_arg "Ring.get: index out of range";
  match r.data.(phys_index r i) with
  | Some x -> x
  | None -> assert false

let get_from_newest r i = get r (r.len - 1 - i)

let pop_oldest r =
  if r.len = 0 then None
  else begin
    let x = r.data.(r.head) in
    r.data.(r.head) <- None;
    r.head <- (r.head + 1) mod capacity r;
    r.len <- r.len - 1;
    x
  end

let iter f r =
  for i = 0 to r.len - 1 do
    f (get r i)
  done

let fold f acc r =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) r;
  !acc

let to_list r = List.rev (fold (fun acc x -> x :: acc) [] r)

let clear r =
  Array.fill r.data 0 (Array.length r.data) None;
  r.head <- 0;
  r.len <- 0

exception Found

let exists p r =
  try
    iter (fun x -> if p x then raise Found) r;
    false
  with Found -> true

let for_all p r = not (exists (fun x -> not (p x)) r)
