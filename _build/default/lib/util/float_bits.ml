let bits_of_float = Int64.bits_of_float

let float_of_bits = Int64.float_of_bits

let flip_bit w i =
  if i < 0 || i > 63 then invalid_arg "Float_bits.flip_bit: bit out of range";
  Int64.logxor w (Int64.shift_left 1L i)

let flip_bits w is = List.fold_left flip_bit w is

let is_exceptional x =
  match Float.classify_float x with
  | FP_nan | FP_infinite -> true
  | FP_normal | FP_subnormal | FP_zero -> false

let subnormal_min = Int64.float_of_bits 1L
