(** Fixed-capacity ring buffer.

    The online monitor keeps bounded histories of samples in rings so that
    its memory use is constant in trace length — the property that makes the
    bolt-on monitor viable at runtime. *)

type 'a t

val create : capacity:int -> 'a t
(** Empty ring.  @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Number of elements currently stored, [<= capacity]. *)

val is_empty : 'a t -> bool

val is_full : 'a t -> bool

val push : 'a t -> 'a -> 'a option
(** Append at the newest end.  When full, the oldest element is evicted and
    returned. *)

val oldest : 'a t -> 'a option

val newest : 'a t -> 'a option

val get : 'a t -> int -> 'a
(** [get r i] is the i-th element counting from the oldest (0-based).
    @raise Invalid_argument if out of range. *)

val get_from_newest : 'a t -> int -> 'a
(** [get_from_newest r 0] = newest, [1] = previous, ...
    @raise Invalid_argument if out of range. *)

val pop_oldest : 'a t -> 'a option
(** Remove and return the oldest element. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest-to-newest iteration. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_list : 'a t -> 'a list
(** Oldest first. *)

val clear : 'a t -> unit

val exists : ('a -> bool) -> 'a t -> bool

val for_all : ('a -> bool) -> 'a t -> bool
