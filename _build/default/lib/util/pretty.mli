(** Printing helpers. *)

val float_exact : float -> string
(** Shortest decimal representation that parses back to the identical bit
    pattern (tries %.15g, %.16g, %.17g).  Specification texts printed with
    this survive a print/parse round-trip. *)
