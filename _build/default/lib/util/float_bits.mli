(** Bit-level views of IEEE-754 doubles and of fixed-width integer fields.

    Used by the fault injector to flip bits in the wire image of a signal and
    by the Ballista value set to build exceptional floats. *)

val bits_of_float : float -> int64
(** IEEE-754 bit pattern of a double. *)

val float_of_bits : int64 -> float
(** Inverse of {!bits_of_float}. *)

val flip_bit : int64 -> int -> int64
(** [flip_bit w i] toggles bit [i] (0 = LSB).  @raise Invalid_argument unless
    [0 <= i < 64]. *)

val flip_bits : int64 -> int list -> int64
(** Toggle several bit positions. *)

val is_exceptional : float -> bool
(** True for NaN and infinities. *)

val subnormal_min : float
(** Smallest positive subnormal double (4.9406564584124654e-324). *)
