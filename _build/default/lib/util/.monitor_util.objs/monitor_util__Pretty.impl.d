lib/util/pretty.ml: Float Int64 Printf
