lib/util/float_bits.ml: Float Int64 List
