lib/util/prng.mli:
