lib/util/ring.mli:
