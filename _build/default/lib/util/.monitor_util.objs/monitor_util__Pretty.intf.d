lib/util/pretty.mli:
