lib/util/float_bits.mli:
