lib/util/stats.mli:
