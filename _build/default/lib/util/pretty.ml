let float_exact x =
  if Float.is_nan x then "nan"
  else if x = Float.infinity then "inf"
  else if x = Float.neg_infinity then "-inf"
  else
    let exact s = Int64.equal (Int64.bits_of_float (float_of_string s)) (Int64.bits_of_float x) in
    let s15 = Printf.sprintf "%.15g" x in
    if exact s15 then s15
    else
      let s16 = Printf.sprintf "%.16g" x in
      if exact s16 then s16 else Printf.sprintf "%.17g" x
