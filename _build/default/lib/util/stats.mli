(** Streaming descriptive statistics (Welford) and small helpers.

    Used by violation reports (intensity/duration summaries) and by the
    benchmark harness. *)

type t
(** Accumulator over a stream of floats. *)

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0.0 when empty. *)

val variance : t -> float
(** Population variance; 0.0 with fewer than two samples. *)

val stddev : t -> float

val min_value : t -> float
(** @raise Invalid_argument when empty. *)

val max_value : t -> float
(** @raise Invalid_argument when empty. *)

val of_list : float list -> t

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in \[0,100\], nearest-rank on a sorted copy.
    @raise Invalid_argument on empty input or p outside \[0,100\]. *)
