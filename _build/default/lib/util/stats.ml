type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min_v = nan; max_v = nan }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.n = 1 then begin
    t.min_v <- x;
    t.max_v <- x
  end
  else begin
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x
  end

let count t = t.n

let mean t = if t.n = 0 then 0.0 else t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int t.n

let stddev t = sqrt (variance t)

let min_value t =
  if t.n = 0 then invalid_arg "Stats.min_value: empty";
  t.min_v

let max_value t =
  if t.n = 0 then invalid_arg "Stats.max_value: empty";
  t.max_v

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let percentile xs p =
  if xs = [] then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if p = 0.0 then a.(0)
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))
