module Mtl = Monitor_mtl

(* Rule sources, numbered as in §III-C of the paper. *)

let rule0_src = "ServiceACC -> not ACCEnabled"

let rule1_src =
  "(VehicleAhead and TargetRange / Velocity < 1.0) -> eventually[0.0, 5.0] \
   (not VehicleAhead or TargetRange / Velocity >= 1.0)"

let rule2_src =
  "(VehicleAhead and TargetRange < 0.5 * (1.0 + 0.5 * SelHeadway) * Velocity) \
   -> fresh_delta(RequestedTorque) <= 0.0"

let rule3_src =
  "(Velocity > ACCSetSpeed and RequestedTorque < 0.0) -> always[0.01, 0.01] \
   RequestedTorque < 0.0"

let rule4_src =
  "Velocity > ACCSetSpeed -> eventually[0.0, 0.4] \
   fresh_delta(RequestedTorque) <= 0.0"

let rule5_src = "BrakeRequested -> RequestedDecel <= 0.0"

let rule6_src =
  "(VehicleAhead and TargetRange < 1.0) -> (not TorqueRequested or \
   RequestedTorque < 0.0)"

let sources = [| rule0_src; rule1_src; rule2_src; rule3_src; rule4_src;
                 rule5_src; rule6_src |]

let descriptions =
  [| "ServiceACC set implies the feature must not claim control";
     "headway time below 1.0 s must recover within 5 s";
     "no torque increase when closer than half the desired headway";
     "negative torque above set speed must not flip sign next step";
     "above set speed, torque must stop increasing within 400 ms";
     "a requested deceleration must in fact be a deceleration";
     "no positive torque request when the target is extremely close" |]

let source n =
  if n < 0 || n > 6 then invalid_arg "Rules.source: rule number out of 0..6";
  sources.(n)

let description n =
  if n < 0 || n > 6 then invalid_arg "Rules.description: rule number out of 0..6";
  descriptions.(n)

let compile ?severity ~name ~description src =
  let severity =
    Option.map
      (fun s ->
        match Mtl.Parser.expr_of_string s with
        | Ok e -> e
        | Error msg -> invalid_arg ("Rules severity: " ^ msg))
      severity
  in
  Mtl.Spec.make ~description ?severity ~name
    (Mtl.Parser.formula_of_string_exn src)

(* Dimensionless badness scores per rule (|s| >= 1 is significant): how far
   past each rule's threshold the system went.  25 N*m of torque step and
   0.5 m/s^2 of wrong-sign deceleration mark the significance scales. *)
let severities =
  [| None;                                              (* rule 0: boolean *)
     Some "(1.0 - TargetRange / Velocity) / 0.25";      (* headway deficit *)
     (* Rule 2's badness scales with closing speed: a torque rise next to
        a target that is pulling away is the benign overtake/cut-in case
        the paper's triage waved through. *)
     Some
       "(fresh_delta(RequestedTorque) / 25.0) * max(0.0, 0.5 - TargetRelVel)";
     Some "RequestedTorque / 25.0";
     Some "fresh_delta(RequestedTorque) / 25.0";
     Some "RequestedDecel / 0.5";
     Some "RequestedTorque / 25.0" |]

let rule n =
  compile
    ?severity:severities.(n)
    ~name:(Printf.sprintf "rule%d" n)
    ~description:(description n) (source n)

let all = List.init 7 rule

(* Relaxed variants --------------------------------------------------------- *)

let relaxed_rule2 ?(torque_epsilon = 25.0) () =
  (* Three relaxations, each answering one §IV-A false-positive class:
     an acquisition warm-up (cut-in range jumps), a closing-speed guard
     (acceleration while the target pulls away is the benign overtaking
     case), and an amplitude threshold (negligible increases). *)
  let src =
    Printf.sprintf
      "warmup(VehicleAhead and prev(VehicleAhead) < 0.5, 1.0, (VehicleAhead \
       and TargetRelVel < 0.5 and TargetRange < 0.5 * (1.0 + 0.5 * \
       SelHeadway) * Velocity) -> fresh_delta(RequestedTorque) <= %g)"
      torque_epsilon
  in
  compile ~name:"rule2_relaxed"
    ~description:
      "rule2 with acquisition warm-up, closing-speed guard and amplitude \
       threshold"
    src

let relaxed_rule3 ?(torque_epsilon = 60.0) () =
  let src =
    Printf.sprintf
      "(Velocity > ACCSetSpeed and RequestedTorque < 0.0) -> always[0.01, \
       0.01] RequestedTorque < %g"
      torque_epsilon
  in
  compile ~name:"rule3_relaxed"
    ~description:"rule3 with a zero-crossing amplitude threshold" src

let relaxed_rule4 ?(overspeed = 1.0) ?(torque_epsilon = 25.0) () =
  let src =
    Printf.sprintf
      "Velocity > ACCSetSpeed + %g -> eventually[0.0, 0.4] \
       fresh_delta(RequestedTorque) <= %g"
      overspeed torque_epsilon
  in
  compile ~name:"rule4_relaxed"
    ~description:"rule4 with an overspeed dead-band and amplitude threshold"
    src

(* Warm-up demonstration ----------------------------------------------------- *)

let consistency_body =
  "(VehicleAhead and TargetRelVel < -0.5) -> fresh_delta(TargetRange) <= 0.5"

let range_consistency_naive =
  compile ~name:"range_consistency_naive"
    ~description:"closing target must not gain range (no warm-up)"
    consistency_body

let range_consistency_warmup =
  compile ~name:"range_consistency_warmup"
    ~description:"closing target must not gain range (0.5 s warm-up)"
    (Printf.sprintf "warmup(VehicleAhead and prev(VehicleAhead) < 0.5, 0.5, %s)"
       consistency_body)
