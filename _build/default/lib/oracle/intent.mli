(** Intent-approximation triage (§IV-A / §V-A).

    The rules approximate feature intent from observables (a torque
    increase stands in for "the feature intends to accelerate").  When a
    rule fires, an engineer judges the violation by {e intensity and
    duration} before deciding whether it is a safety problem or an
    artefact of an overly strict rule.  This module is that judgment, made
    executable: filters over violation episodes, and a classifier used by
    the real-vehicle-log experiment. *)

type filter = {
  min_duration : float;   (** episodes shorter than this are transient *)
  min_ticks : int;        (** episodes with fewer False ticks are blips *)
  min_intensity : float;
      (** episodes whose measured peak |severity| stays below this are
          negligible ("negligibly sized increases"); severity is the
          spec's dimensionless badness score (1.0 = significant).
          Episodes without a measured severity pass this criterion. *)
}

val strict : filter
(** Keeps everything (0.0 / 1 / 0.0). *)

val transient_tolerant : filter
(** The paper's triage stance for the vehicle logs: one-cycle blips,
    sub-100 ms transients and negligible amplitudes are "reasonable"
    (0.1 s / 3 ticks / severity 1.0). *)

val significant : filter -> Oracle.episode list -> Oracle.episode list

val classify :
  filter -> Oracle.rule_outcome ->
  [ `Clean | `Reasonable_violations | `Safety_violations ]
(** [`Clean]: no episodes at all; [`Reasonable_violations]: episodes exist
    but none survive the filter; [`Safety_violations]: at least one
    survives. *)
