type filter = {
  min_duration : float;
  min_ticks : int;
  min_intensity : float;
}

let strict = { min_duration = 0.0; min_ticks = 1; min_intensity = 0.0 }

let transient_tolerant =
  { min_duration = 0.1; min_ticks = 3; min_intensity = 1.0 }

let significant filter episodes =
  List.filter
    (fun (e : Oracle.episode) ->
      e.Oracle.duration >= filter.min_duration
      && e.Oracle.ticks >= filter.min_ticks
      &&
      match e.Oracle.intensity with
      | None -> true
      | Some peak -> peak >= filter.min_intensity)
    episodes

let classify filter (outcome : Oracle.rule_outcome) =
  match outcome.Oracle.episodes with
  | [] -> `Clean
  | episodes ->
    if significant filter episodes = [] then `Reasonable_violations
    else `Safety_violations
