(** The monitor-based test oracle: run a set of rules over a captured bus
    trace and classify each as satisfied or violated, with the violation
    episodes a test engineer would triage. *)

type episode = {
  start_time : float;
  end_time : float;    (** time of the last False tick in the episode *)
  duration : float;    (** [end_time - start_time]; 0 for one-tick blips *)
  ticks : int;         (** number of False verdicts in the episode *)
  intensity : float option;
      (** peak |severity| over the episode's False ticks, when the spec
          declares a severity expression *)
}

type status =
  | Satisfied   (** no False verdict; some ticks may be Unknown *)
  | Violated    (** at least one False verdict *)

type rule_outcome = {
  spec : Monitor_mtl.Spec.t;
  status : status;
  episodes : episode list;       (** in time order *)
  ticks_total : int;
  ticks_true : int;
  ticks_false : int;
  ticks_unknown : int;
}

val default_period : float
(** 0.01 s — the fast message period, the rate the paper's monitor ran at. *)

val snapshots_of_trace :
  ?period:float -> Monitor_trace.Trace.t -> Monitor_trace.Snapshot.t list

val check_spec :
  ?period:float -> Monitor_mtl.Spec.t -> Monitor_trace.Trace.t -> rule_outcome
(** Offline evaluation over the whole log — the paper's workflow. *)

val check :
  ?period:float -> Monitor_mtl.Spec.t list -> Monitor_trace.Trace.t ->
  rule_outcome list

val check_spec_online :
  ?period:float -> Monitor_mtl.Spec.t -> Monitor_trace.Trace.t -> rule_outcome
(** Same verdicts through the constant-memory online monitor. *)

val status_letter : status -> string
(** ["S"] or ["V"] — Table I notation. *)

val episodes_of_verdicts :
  ?severity:float option array -> times:float array ->
  Monitor_mtl.Verdict.t array -> episode list
(** Group consecutive False ticks (Unknown does not break an episode).
    [severity.(i)] is |severity| at tick [i] when computable. *)
