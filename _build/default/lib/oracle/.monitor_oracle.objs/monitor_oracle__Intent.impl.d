lib/oracle/intent.ml: List Oracle
