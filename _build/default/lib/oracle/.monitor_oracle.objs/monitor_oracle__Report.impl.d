lib/oracle/report.ml: Array Buffer List Monitor_mtl Oracle Printf String
