lib/oracle/report.mli: Oracle
