lib/oracle/oracle.ml: Array Float Int List Monitor_mtl Monitor_trace
