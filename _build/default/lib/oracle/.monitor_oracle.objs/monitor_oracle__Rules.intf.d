lib/oracle/rules.mli: Monitor_mtl
