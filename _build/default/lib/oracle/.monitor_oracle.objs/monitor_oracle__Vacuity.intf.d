lib/oracle/vacuity.mli: Monitor_mtl Monitor_trace
