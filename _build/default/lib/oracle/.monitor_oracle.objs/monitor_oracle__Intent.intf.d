lib/oracle/intent.mli: Oracle
