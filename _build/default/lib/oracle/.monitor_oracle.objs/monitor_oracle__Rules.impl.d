lib/oracle/rules.ml: Array List Monitor_mtl Option Printf
