lib/oracle/vacuity.ml: Array Buffer List Monitor_mtl Oracle Printf
