lib/oracle/oracle.mli: Monitor_mtl Monitor_trace
