(** The paper's safety specification: Rules #0–#6 of §III-C, written in the
    monitor's specification language, plus the relaxed variants produced by
    the paper's triage loop and a warm-up demonstration rule.

    All rules read only signals broadcast on the CAN bus — the premise of
    the bolt-on monitor.  Where a rule needs the "desired headway" it uses
    the expert mapping 1.0/1.5/2.0 s for SelHeadway 0/1/2, expressed as
    [1.0 + 0.5 * SelHeadway] (the monitor has no access to the feature's
    real parameters). *)

val source : int -> string
(** The textual source of rule [n] (0..6).
    @raise Invalid_argument outside 0..6. *)

val rule : int -> Monitor_mtl.Spec.t
(** Compiled rule [n]. *)

val all : Monitor_mtl.Spec.t list
(** Rules #0..#6 in order. *)

val description : int -> string
(** The paper's one-line gloss. *)

(** {2 Relaxed variants (§IV-A intent-approximation triage)}

    Real-vehicle logs violated #2, #3 and #4 only in "reasonable" ways —
    negligible torque increases, cut-in/overtake headway transients, hill
    starts.  The paper's response was to relax the rules; these are those
    relaxations, with the thresholds exposed. *)

val relaxed_rule2 : ?torque_epsilon:float -> unit -> Monitor_mtl.Spec.t
(** Ignores torque increases smaller than [torque_epsilon] N*m (default
    25.0) and suppresses the check for 1 s after a target acquisition (the
    cut-in case). *)

val relaxed_rule3 : ?torque_epsilon:float -> unit -> Monitor_mtl.Spec.t
(** Requires the torque to cross zero by more than [torque_epsilon]
    (default 60.0, about one 40 ms sample of torque slew) before flagging. *)

val relaxed_rule4 : ?overspeed:float -> ?torque_epsilon:float -> unit ->
  Monitor_mtl.Spec.t
(** Only applies when the vehicle exceeds the set speed by more than
    [overspeed] m/s (default 1.0) — a hill start barely above the set
    speed no longer counts — and ignores sub-[torque_epsilon] increases. *)

(** {2 Warm-up demonstration (§V-C2)} *)

val range_consistency_naive : Monitor_mtl.Spec.t
(** "A closing target's range must not be increasing" — without warm-up;
    false-alarms at every target acquisition, when TargetRange jumps from
    0 to the true range. *)

val range_consistency_warmup : Monitor_mtl.Spec.t
(** The same property wrapped in [warmup(acquisition, 0.5, ...)]. *)
