(** Rendering oracle results: the Table I matrix and per-rule summaries. *)

type table_row = {
  kind_label : string;
  target_label : string;
  letters : string list;  (** "S"/"V" per rule, in rule order *)
}

val table_row : kind_label:string -> target_label:string ->
  Oracle.rule_outcome list -> table_row

val render_table :
  ?title:string -> rule_count:int -> table_row list -> string
(** The Table I layout: one row per (injection, target), one column per
    rule. *)

val render_outcome : Oracle.rule_outcome -> string
(** One rule's verdict with episode details. *)

val render_outcomes : Oracle.rule_outcome list -> string

val summarize : table_row list -> rule_count:int -> string
(** Which rules were ever violated, and by how many rows — the paper's
    "six out of the seven rules were detected as violated" headline. *)
