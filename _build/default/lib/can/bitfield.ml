type byte_order = Little_endian | Big_endian

(* Absolute bit positions of a field, listed from the field's LSB upwards.

   Little-endian: LSB sits at [start_bit]; successive bits occupy ascending
   absolute positions.

   Big-endian (Motorola "forward"): [start_bit] names the MSB.  Walking from
   the MSB, the in-byte position decreases; below 0 it wraps to bit 7 of the
   next byte.  We compute MSB-first then reverse to get LSB-first. *)
let positions order ~start_bit ~length =
  match order with
  | Little_endian -> List.init length (fun i -> start_bit + i)
  | Big_endian ->
    let rec walk acc byte bit remaining =
      if remaining = 0 then List.rev acc
      else
        let pos = (byte * 8) + bit in
        if bit = 0 then walk (pos :: acc) (byte + 1) 7 (remaining - 1)
        else walk (pos :: acc) byte (bit - 1) (remaining - 1)
    in
    (* walk yields MSB-first; the caller wants LSB-first. *)
    List.rev (walk [] (start_bit / 8) (start_bit mod 8) length)

let check_args ~start_bit ~length =
  if length < 1 || length > 64 then invalid_arg "Bitfield: length must be in 1..64";
  if start_bit < 0 then invalid_arg "Bitfield: negative start_bit"

let fits ~dlc order ~start_bit ~length =
  start_bit >= 0 && length >= 1 && length <= 64
  && List.for_all
       (fun pos -> pos >= 0 && pos < dlc * 8)
       (positions order ~start_bit ~length)

let insert payload order ~start_bit ~length raw =
  check_args ~start_bit ~length;
  let dlc = Bytes.length payload in
  let ps = positions order ~start_bit ~length in
  if not (List.for_all (fun p -> p < dlc * 8) ps) then
    invalid_arg "Bitfield.insert: field exceeds payload";
  List.iteri
    (fun i pos ->
      let bit = Int64.logand (Int64.shift_right_logical raw i) 1L in
      let byte = pos / 8 and in_byte = pos mod 8 in
      let current = Char.code (Bytes.get payload byte) in
      let mask = 1 lsl in_byte in
      let updated =
        if Int64.equal bit 1L then current lor mask else current land lnot mask
      in
      Bytes.set payload byte (Char.chr (updated land 0xFF)))
    ps

let extract payload order ~start_bit ~length =
  check_args ~start_bit ~length;
  let dlc = Bytes.length payload in
  let ps = positions order ~start_bit ~length in
  if not (List.for_all (fun p -> p < dlc * 8) ps) then
    invalid_arg "Bitfield.extract: field exceeds payload";
  List.fold_left
    (fun (acc, i) pos ->
      let byte = pos / 8 and in_byte = pos mod 8 in
      let bit = (Char.code (Bytes.get payload byte) lsr in_byte) land 1 in
      let acc =
        if bit = 1 then Int64.logor acc (Int64.shift_left 1L i) else acc
      in
      (acc, i + 1))
    (0L, 0) ps
  |> fst

let sign_extend raw ~length =
  if length >= 64 then raw
  else
    let sign_bit = Int64.logand (Int64.shift_right_logical raw (length - 1)) 1L in
    if Int64.equal sign_bit 1L then
      Int64.logor raw (Int64.shift_left (-1L) length)
    else raw
