let polynomial = 0x4599

let crc15 bits =
  let step crc bit =
    let crc_next = (crc lsl 1) land 0x7FFF in
    let msb = crc land 0x4000 <> 0 in
    if Bool.equal bit msb then crc_next else crc_next lxor polynomial
  in
  List.fold_left step 0 bits

let crc15_bits bits =
  let crc = crc15 bits in
  List.init 15 (fun i -> crc land (1 lsl (14 - i)) <> 0)
