(** Passive frame capture — the bolt-on monitor's only connection to the
    system under test.

    Subscribes to a bus, stores every delivered frame with its timestamp,
    and decodes the capture into a signal {!Monitor_trace.Trace.t} using a
    message database.  This mirrors the paper's workflow: ControlDesk trace
    capture on the HIL, then offline analysis of the log. *)

type t

val attach : Bus.t -> t
(** Create a logger and subscribe it. *)

val frame_count : t -> int

val frames : t -> (float * Frame.t) list
(** Capture in delivery order. *)

val to_trace : t -> Dbc.t -> Monitor_trace.Trace.t
(** Decode every captured frame; signals of unknown ids are dropped (a
    passive monitor simply cannot interpret them). *)

val clear : t -> unit
