lib/can/bitfield.ml: Bytes Char Int64 List
