lib/can/dbc.mli: Format Frame Message Monitor_signal
