lib/can/frame.mli: Format
