lib/can/message.ml: Bitfield Bytes Char Coding Fmt Frame Hashtbl Int64 List Printf
