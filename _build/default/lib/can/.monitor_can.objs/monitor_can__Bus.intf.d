lib/can/bus.mli: Frame
