lib/can/scheduler.ml: Bus Float List Message Monitor_signal Monitor_util
