lib/can/candump.ml: Buffer Bytes Char Dbc Frame Fun In_channel List Monitor_trace Printf String
