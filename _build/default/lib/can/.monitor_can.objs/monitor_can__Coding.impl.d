lib/can/coding.ml: Bitfield Float Int32 Int64 Monitor_signal Value
