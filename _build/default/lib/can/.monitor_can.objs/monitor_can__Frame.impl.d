lib/can/frame.ml: Buffer Bytes Char Fmt Int Printf
