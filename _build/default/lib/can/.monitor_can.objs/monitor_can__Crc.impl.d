lib/can/crc.ml: Bool List
