lib/can/bus.ml: Bool Bytes Char Crc Float Frame List
