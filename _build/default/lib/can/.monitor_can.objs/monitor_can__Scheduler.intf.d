lib/can/scheduler.mli: Bus Message Monitor_signal
