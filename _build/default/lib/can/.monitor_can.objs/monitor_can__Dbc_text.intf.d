lib/can/dbc_text.mli: Dbc
