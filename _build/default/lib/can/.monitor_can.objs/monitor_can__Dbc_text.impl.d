lib/can/dbc_text.ml: Bitfield Buffer Coding Dbc Fun In_channel List Message Monitor_util Option Printf Scanf String
