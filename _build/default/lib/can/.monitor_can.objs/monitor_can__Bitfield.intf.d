lib/can/bitfield.mli:
