lib/can/crc.mli:
