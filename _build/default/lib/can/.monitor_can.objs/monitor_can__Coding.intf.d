lib/can/coding.mli: Bitfield Monitor_signal
