lib/can/message.mli: Coding Format Frame Monitor_signal
