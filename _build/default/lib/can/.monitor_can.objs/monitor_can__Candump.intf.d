lib/can/candump.mli: Dbc Frame Monitor_trace
