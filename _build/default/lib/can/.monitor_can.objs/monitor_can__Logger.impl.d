lib/can/logger.ml: Bus Dbc Frame List Monitor_trace
