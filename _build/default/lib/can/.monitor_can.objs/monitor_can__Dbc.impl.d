lib/can/dbc.ml: Fmt Frame Hashtbl List Message Printf
