lib/can/logger.mli: Bus Dbc Frame Monitor_trace
