(** CAN 2.0 data frames.

    The paper's monitor reads "messages already available on the vehicle's
    CAN broadcast network" — this module is the unit of that traffic.  Both
    base (11-bit) and extended (29-bit) identifiers are supported; the
    prototype platform used base frames. *)

type format = Base | Extended

type t = private {
  id : int;            (** 11-bit (Base) or 29-bit (Extended) identifier *)
  format : format;
  data : bytes;        (** 0–8 payload bytes *)
}

val make : ?format:format -> id:int -> data:bytes -> unit -> t
(** @raise Invalid_argument if the id exceeds the format's width or the
    payload exceeds 8 bytes. *)

val dlc : t -> int
(** Payload length in bytes. *)

val equal : t -> t -> bool

val compare_priority : t -> t -> int
(** CAN arbitration order: lower identifier wins; base frames beat extended
    frames with the same leading bits (we approximate with id, then
    format). *)

val pp : Format.formatter -> t -> unit

val max_base_id : int
val max_extended_id : int
