let default_period_ms = 100

(* Parsing ------------------------------------------------------------------ *)

type partial_message = {
  pm_id : int;
  pm_name : string;
  pm_dlc : int;
  mutable pm_codings : Coding.t list;  (* reversed *)
  mutable pm_period_ms : int option;
}

let strip s = String.trim s

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* "SG_ Name : 0|32@1+ (0.01,0) [0|655.35] "km/h" RX" *)
let parse_signal_line line =
  try
    Scanf.sscanf line "SG_ %s@: %d|%d@%d%c (%f,%f) [%f|%f] %S"
      (fun name start_bit length endian sign scale offset _min _max _unit ->
        let name = strip name in
        let byte_order =
          match endian with
          | 1 -> Bitfield.Little_endian
          | 0 -> Bitfield.Big_endian
          | _ -> failwith "endianness digit must be 0 or 1"
        in
        let signed =
          match sign with
          | '+' -> false
          | '-' -> true
          | _ -> failwith "sign must be + or -"
        in
        Ok
          (Coding.make ~signal_name:name ~start_bit ~length ~byte_order
             ~repr:(Coding.Scaled_int { signed; scale; offset })))
  with
  | Scanf.Scan_failure msg | Failure msg -> Error msg
  | End_of_file -> Error "truncated SG_ line"

let parse_message_line line =
  try
    Scanf.sscanf line "BO_ %d %s@: %d %s" (fun id name dlc _sender ->
        Ok (id, strip name, dlc))
  with
  | Scanf.Scan_failure msg | Failure msg -> Error msg
  | End_of_file -> Error "truncated BO_ line"

let parse_cycle_time line =
  try
    Scanf.sscanf line "BA_ \"GenMsgCycleTime\" BO_ %d %d;" (fun id ms ->
        Some (id, ms))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let parse_valtype line =
  try
    Scanf.sscanf line "SIG_VALTYPE_ %d %s@: %d;" (fun id name kind ->
        Some (id, strip name, kind))
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let apply_valtype messages (id, signal, kind) =
  match List.find_opt (fun pm -> pm.pm_id = id) messages with
  | None -> Error (Printf.sprintf "SIG_VALTYPE_ for unknown message %d" id)
  | Some pm -> begin
    let repr =
      match kind with
      | 1 -> Ok Coding.Raw_float32
      | 2 -> Ok Coding.Raw_float64
      | k -> Error (Printf.sprintf "unsupported SIG_VALTYPE_ kind %d" k)
    in
    match repr with
    | Error _ as e -> e
    | Ok repr -> begin
      match
        List.partition
          (fun (c : Coding.t) -> String.equal c.Coding.signal_name signal)
          pm.pm_codings
      with
      | [ c ], rest ->
        pm.pm_codings <-
          Coding.make ~signal_name:signal ~start_bit:c.Coding.start_bit
            ~length:c.Coding.length ~byte_order:c.Coding.byte_order ~repr
          :: rest;
        Ok ()
      | [], _ -> Error ("SIG_VALTYPE_ for unknown signal " ^ signal)
      | _ :: _ :: _, _ -> Error ("duplicate signal " ^ signal)
    end
  end

let of_string source =
  let lines = String.split_on_char '\n' source in
  let messages = ref [] in
  let current = ref None in
  let pending_valtypes = ref [] in
  let error = ref None in
  List.iteri
    (fun lineno raw ->
      if !error = None then begin
        let line = strip raw in
        let fail msg =
          error := Some (Printf.sprintf "line %d: %s" (lineno + 1) msg)
        in
        if line = "" then ()
        else if starts_with "BO_ " line then begin
          match parse_message_line line with
          | Error msg -> fail msg
          | Ok (id, name, dlc) ->
            let pm =
              { pm_id = id; pm_name = name; pm_dlc = dlc; pm_codings = [];
                pm_period_ms = None }
            in
            messages := pm :: !messages;
            current := Some pm
        end
        else if starts_with "SG_ " line then begin
          match !current with
          | None -> fail "SG_ outside a BO_ block"
          | Some pm -> begin
            match parse_signal_line line with
            | Error msg -> fail msg
            | Ok coding -> pm.pm_codings <- coding :: pm.pm_codings
          end
        end
        else if starts_with "BA_ \"GenMsgCycleTime\"" line then begin
          match parse_cycle_time line with
          | Some (id, ms) -> begin
            match List.find_opt (fun pm -> pm.pm_id = id) !messages with
            | Some pm -> pm.pm_period_ms <- Some ms
            | None -> fail (Printf.sprintf "cycle time for unknown message %d" id)
          end
          | None -> fail "malformed GenMsgCycleTime attribute"
        end
        else if starts_with "SIG_VALTYPE_" line then begin
          match parse_valtype line with
          | Some v -> pending_valtypes := v :: !pending_valtypes
          | None -> fail "malformed SIG_VALTYPE_ line"
        end
        else
          (* VERSION, NS_, BS_, BU_, CM_, other BA_, VAL_ ... are ignored,
             as is anything we do not understand at top level. *)
          ()
      end)
    lines;
  (match !error with
   | None ->
     List.iter
       (fun v ->
         match apply_valtype !messages v with
         | Ok () -> ()
         | Error msg -> error := Some msg)
       (List.rev !pending_valtypes)
   | Some _ -> ());
  match !error with
  | Some msg -> Error msg
  | None -> begin
    match
      List.rev_map
        (fun pm ->
          Message.make ~name:pm.pm_name ~id:pm.pm_id ~dlc:pm.pm_dlc
            ~period_ms:(Option.value ~default:default_period_ms pm.pm_period_ms)
            ~codings:(List.rev pm.pm_codings) ())
        !messages
    with
    | messages -> begin
      match Dbc.create messages with
      | dbc -> Ok dbc
      | exception Invalid_argument msg -> Error msg
    end
    | exception Invalid_argument msg -> Error msg
  end

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | source -> of_string source
  | exception Sys_error msg -> Error msg

(* Printing ------------------------------------------------------------------ *)

let coding_as_scaled (c : Coding.t) =
  (* DBC SG_ lines only speak scaled integers; raw floats keep a neutral
     (1, 0) scaling here and get their SIG_VALTYPE_ marker below. *)
  match c.Coding.repr with
  | Coding.Scaled_int { signed; scale; offset } -> (signed, scale, offset)
  | Coding.Raw_float32 | Coding.Raw_float64 -> (true, 1.0, 0.0)
  | Coding.Raw_bool | Coding.Raw_enum -> (false, 1.0, 0.0)

let to_string dbc =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "VERSION \"\"\n\nBS_:\n\nBU_: Monitor\n\n";
  List.iter
    (fun (m : Message.t) ->
      Buffer.add_string buf
        (Printf.sprintf "BO_ %d %s: %d Monitor\n" m.Message.id m.Message.name
           m.Message.dlc);
      List.iter
        (fun (c : Coding.t) ->
          let signed, scale, offset = coding_as_scaled c in
          Buffer.add_string buf
            (Printf.sprintf " SG_ %s : %d|%d@%d%c (%s,%s) [0|0] \"\" Monitor\n"
               c.Coding.signal_name c.Coding.start_bit c.Coding.length
               (match c.Coding.byte_order with
                | Bitfield.Little_endian -> 1
                | Bitfield.Big_endian -> 0)
               (if signed then '-' else '+')
               (Monitor_util.Pretty.float_exact scale)
               (Monitor_util.Pretty.float_exact offset)))
        m.Message.codings;
      Buffer.add_char buf '\n')
    (Dbc.messages dbc);
  List.iter
    (fun (m : Message.t) ->
      Buffer.add_string buf
        (Printf.sprintf "BA_ \"GenMsgCycleTime\" BO_ %d %d;\n" m.Message.id
           m.Message.period_ms))
    (Dbc.messages dbc);
  List.iter
    (fun (m : Message.t) ->
      List.iter
        (fun (c : Coding.t) ->
          match c.Coding.repr with
          | Coding.Raw_float32 ->
            Buffer.add_string buf
              (Printf.sprintf "SIG_VALTYPE_ %d %s : 1;\n" m.Message.id
                 c.Coding.signal_name)
          | Coding.Raw_float64 ->
            Buffer.add_string buf
              (Printf.sprintf "SIG_VALTYPE_ %d %s : 2;\n" m.Message.id
                 c.Coding.signal_name)
          | Coding.Scaled_int _ | Coding.Raw_bool | Coding.Raw_enum -> ())
        m.Message.codings)
    (Dbc.messages dbc);
  Buffer.contents buf

let save path dbc =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string dbc))
