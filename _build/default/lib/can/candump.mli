(** The candump log format (SocketCAN `candump -L`):

    {v
    (1436509052.249713) can0 123#DEADBEEF
    (1436509052.249890) can0 18FF00F1#0102030405060708
    v}

    The lingua franca for real CAN captures — a bolt-on monitor deployment
    reads these straight off a vehicle.  Extended (29-bit) identifiers are
    recognised by their 8-hex-digit form, as candump writes them. *)

val frame_to_line : ?interface:string -> time:float -> Frame.t -> string

val to_string : ?interface:string -> (float * Frame.t) list -> string
(** Render a capture (e.g. {!Logger.frames}). *)

val save : ?interface:string -> string -> (float * Frame.t) list -> unit

val of_string : string -> ((float * Frame.t) list, string) result
(** Parse; reports the first offending line.  The interface name is
    accepted and discarded. *)

val load : string -> ((float * Frame.t) list, string) result

val decode : Dbc.t -> (float * Frame.t) list -> Monitor_trace.Trace.t
(** Turn a frame capture into a signal trace via a message database —
    candump + DBC in, oracle-ready trace out. *)
