type t = { mutable captured : (float * Frame.t) list; mutable count : int }

let attach bus =
  let t = { captured = []; count = 0 } in
  Bus.subscribe bus (fun ~time frame ->
      t.captured <- (time, frame) :: t.captured;
      t.count <- t.count + 1);
  t

let frame_count t = t.count

let frames t = List.rev t.captured

let to_trace t dbc =
  let trace = Monitor_trace.Trace.create () in
  List.iter
    (fun (time, frame) ->
      List.iter
        (fun (name, value) ->
          Monitor_trace.Trace.append trace
            (Monitor_trace.Record.make ~time ~name ~value))
        (Dbc.decode_frame dbc frame))
    (frames t);
  trace

let clear t =
  t.captured <- [];
  t.count <- 0
