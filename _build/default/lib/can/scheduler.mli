(** Periodic message publication.

    Automotive ECUs broadcast state messages on fixed periods; the paper's
    platform had two relevant periods, one four times slower than the other,
    and enough jitter that a delayed slow message sometimes left five fast
    updates between consecutive slow updates (§V-C1).  Each task samples its
    signals through a [lookup] at (jittered) publication instants and posts
    the encoded frame on the bus. *)

type t

val create : ?seed:int64 -> Bus.t -> t
(** Jitter draws from a PRNG seeded by [seed] (default 0 = no draw needed
    until a jittered task is added). *)

val add_task :
  t -> message:Message.t -> ?offset_ms:float -> ?jitter_ms:float ->
  lookup:(string -> Monitor_signal.Value.t option) -> unit -> unit
(** Publish [message] every [message.period_ms], first at [offset_ms], each
    instance delayed by an independent uniform draw in \[0, jitter_ms\].
    [lookup] is consulted at the moment of publication. *)

val add_group :
  t -> messages:Message.t list -> ?offset_ms:float -> ?jitter_ms:float ->
  lookup:(string -> Monitor_signal.Value.t option) -> unit -> unit
(** Like {!add_task} for several messages published by one node back to
    back: they share every publication instant (one jitter draw per cycle),
    so their contents stay mutually consistent on the wire — e.g. a radar's
    track data and track-status messages.  All messages must declare the
    same period.  @raise Invalid_argument otherwise or on []. *)

val advance : t -> to_time:float -> unit
(** Post every publication due strictly before [to_time], then run the bus
    up to [to_time]. *)
