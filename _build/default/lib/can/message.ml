type t = {
  name : string;
  id : int;
  format : Frame.format;
  dlc : int;
  period_ms : int;
  codings : Coding.t list;
}

(* Absolute bit positions claimed by a coding, reusing the Bitfield layout
   rules via a probe payload. *)
let claimed_bits dlc (c : Coding.t) =
  let probe = Bytes.make dlc '\000' in
  Bitfield.insert probe c.byte_order ~start_bit:c.start_bit ~length:c.length
    (Int64.minus_one);
  let bits = ref [] in
  for byte = 0 to dlc - 1 do
    let v = Char.code (Bytes.get probe byte) in
    for bit = 0 to 7 do
      if v land (1 lsl bit) <> 0 then bits := ((byte * 8) + bit) :: !bits
    done
  done;
  !bits

let make ?(format = Frame.Base) ~name ~id ~dlc ~period_ms ~codings () =
  if dlc < 0 || dlc > 8 then invalid_arg "Message.make: dlc out of 0..8";
  if period_ms <= 0 then invalid_arg "Message.make: period_ms must be positive";
  let max_id =
    match format with
    | Frame.Base -> Frame.max_base_id
    | Frame.Extended -> Frame.max_extended_id
  in
  if id < 0 || id > max_id then invalid_arg "Message.make: id out of range";
  List.iter
    (fun (c : Coding.t) ->
      if not (Bitfield.fits ~dlc c.byte_order ~start_bit:c.start_bit ~length:c.length)
      then
        invalid_arg
          (Printf.sprintf "Message.make: signal %s does not fit %d-byte payload"
             c.signal_name dlc))
    codings;
  let seen = Hashtbl.create 64 in
  List.iter
    (fun c ->
      List.iter
        (fun bit ->
          if Hashtbl.mem seen bit then
            invalid_arg
              (Printf.sprintf "Message.make: signal %s overlaps bit %d"
                 c.Coding.signal_name bit);
          Hashtbl.add seen bit ())
        (claimed_bits dlc c))
    codings;
  { name; id; format; dlc; period_ms; codings }

let signal_names t = List.map (fun (c : Coding.t) -> c.signal_name) t.codings

let encode t ~lookup =
  let payload = Bytes.make t.dlc '\000' in
  List.iter
    (fun (c : Coding.t) ->
      match lookup c.signal_name with
      | None -> ()
      | Some v ->
        let raw = Coding.encode c v in
        Bitfield.insert payload c.byte_order ~start_bit:c.start_bit
          ~length:c.length raw)
    t.codings;
  Frame.make ~format:t.format ~id:t.id ~data:payload ()

let decode t (frame : Frame.t) =
  if frame.Frame.id <> t.id then invalid_arg "Message.decode: id mismatch";
  if Frame.dlc frame <> t.dlc then invalid_arg "Message.decode: dlc mismatch";
  List.map
    (fun (c : Coding.t) ->
      let raw =
        Bitfield.extract frame.Frame.data c.byte_order ~start_bit:c.start_bit
          ~length:c.length
      in
      (c.signal_name, Coding.decode c raw))
    t.codings

let pp ppf t =
  Fmt.pf ppf "%s (0x%03X, %dB, %dms): %a" t.name t.id t.dlc t.period_ms
    Fmt.(list ~sep:comma string)
    (signal_names t)
