type task = {
  messages : Message.t list;  (* published back to back at each instant *)
  period : float;
  jitter : float;
  lookup : string -> Monitor_signal.Value.t option;
  mutable next_nominal : float;
}

type t = {
  bus : Bus.t;
  prng : Monitor_util.Prng.t;
  mutable tasks : task list;
}

let create ?(seed = 0L) bus =
  { bus; prng = Monitor_util.Prng.create seed; tasks = [] }

let add_group t ~messages ?(offset_ms = 0.0) ?(jitter_ms = 0.0) ~lookup () =
  if jitter_ms < 0.0 then invalid_arg "Scheduler.add_group: negative jitter";
  let period_ms =
    match messages with
    | [] -> invalid_arg "Scheduler.add_group: empty message group"
    | m :: rest ->
      List.iter
        (fun (m' : Message.t) ->
          if m'.Message.period_ms <> m.Message.period_ms then
            invalid_arg "Scheduler.add_group: mixed periods in one group")
        rest;
      m.Message.period_ms
  in
  let task =
    { messages;
      period = float_of_int period_ms /. 1000.0;
      jitter = jitter_ms /. 1000.0;
      lookup;
      next_nominal = offset_ms /. 1000.0 }
  in
  t.tasks <- t.tasks @ [ task ]

let add_task t ~message ?offset_ms ?jitter_ms ~lookup () =
  add_group t ~messages:[ message ] ?offset_ms ?jitter_ms ~lookup ()

let advance t ~to_time =
  (* Collect all publication instants first so interleaved tasks request in
     a deterministic global order. *)
  let requests = ref [] in
  List.iter
    (fun task ->
      while task.next_nominal < to_time do
        let delay =
          if task.jitter = 0.0 then 0.0
          else Monitor_util.Prng.float t.prng task.jitter
        in
        requests := (task.next_nominal +. delay, task) :: !requests;
        task.next_nominal <- task.next_nominal +. task.period
      done)
    t.tasks;
  let ordered =
    List.sort (fun (a, _) (b, _) -> Float.compare a b) (List.rev !requests)
  in
  List.iter
    (fun (time, task) ->
      List.iter
        (fun message ->
          let frame = Message.encode message ~lookup:task.lookup in
          Bus.request t.bus ~time frame)
        task.messages)
    ordered;
  Bus.run_until t.bus ~time:to_time
