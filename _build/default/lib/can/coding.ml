type representation =
  | Scaled_int of { signed : bool; scale : float; offset : float }
  | Raw_float32
  | Raw_float64
  | Raw_bool
  | Raw_enum

type t = {
  signal_name : string;
  start_bit : int;
  length : int;
  byte_order : Bitfield.byte_order;
  repr : representation;
}

let make ~signal_name ~start_bit ~length ~byte_order ~repr =
  (match repr with
   | Raw_float32 when length <> 32 ->
     invalid_arg "Coding.make: Raw_float32 requires length 32"
   | Raw_float64 when length <> 64 ->
     invalid_arg "Coding.make: Raw_float64 requires length 64"
   | Raw_bool when length <> 1 ->
     invalid_arg "Coding.make: Raw_bool requires length 1"
   | Scaled_int { scale; _ } when scale = 0.0 || Float.is_nan scale ->
     invalid_arg "Coding.make: zero or NaN scale"
   | Scaled_int _ | Raw_float32 | Raw_float64 | Raw_bool | Raw_enum -> ());
  if length < 1 || length > 64 then invalid_arg "Coding.make: length out of 1..64";
  if start_bit < 0 then invalid_arg "Coding.make: negative start_bit";
  { signal_name; start_bit; length; byte_order; repr }

let raw_range t =
  match t.repr with
  | Raw_float32 | Raw_float64 -> None
  | Raw_bool -> Some (0L, 1L)
  | Raw_enum ->
    let hi =
      if t.length >= 63 then Int64.max_int
      else Int64.sub (Int64.shift_left 1L t.length) 1L
    in
    Some (0L, hi)
  | Scaled_int { signed; _ } ->
    if signed then
      if t.length = 64 then Some (Int64.min_int, Int64.max_int)
      else
        let hi = Int64.sub (Int64.shift_left 1L (t.length - 1)) 1L in
        Some (Int64.neg (Int64.add hi 1L), hi)
    else if t.length >= 63 then Some (0L, Int64.max_int)
    else Some (0L, Int64.sub (Int64.shift_left 1L t.length) 1L)

let mask_to_length raw length =
  if length >= 64 then raw
  else Int64.logand raw (Int64.sub (Int64.shift_left 1L length) 1L)

let saturate_int64_of_float x =
  (* Float.to_int64 is undefined outside the representable range. *)
  if Float.is_nan x then 0L
  else if x >= 9.2233720368547758e18 then Int64.max_int
  else if x <= -9.2233720368547758e18 then Int64.min_int
  else Int64.of_float x

let encode t v =
  let open Monitor_signal in
  match t.repr with
  | Raw_bool -> if Value.as_bool v then 1L else 0L
  | Raw_enum -> begin
    let i =
      match v with
      | Value.Enum i -> Int64.of_int (max 0 i)
      | Value.Bool b -> if b then 1L else 0L
      | Value.Float x -> saturate_int64_of_float (Float.max 0.0 x)
    in
    match raw_range t with
    | Some (lo, hi) -> mask_to_length (Int64.max lo (Int64.min hi i)) t.length
    | None -> assert false
  end
  | Raw_float32 ->
    Int64.of_int32 (Int32.bits_of_float (Value.as_float v))
    |> fun b -> Int64.logand b 0xFFFFFFFFL
  | Raw_float64 -> Int64.bits_of_float (Value.as_float v)
  | Scaled_int { scale; offset; _ } -> begin
    let phys = Value.as_float v in
    let raw_f = (phys -. offset) /. scale in
    let raw = saturate_int64_of_float (Float.round raw_f) in
    match raw_range t with
    | Some (lo, hi) -> mask_to_length (Int64.max lo (Int64.min hi raw)) t.length
    | None -> assert false
  end

let decode t raw =
  let open Monitor_signal in
  match t.repr with
  | Raw_bool -> Value.Bool (Int64.logand raw 1L = 1L)
  | Raw_enum -> Value.Enum (Int64.to_int (mask_to_length raw t.length))
  | Raw_float32 ->
    Value.Float (Int32.float_of_bits (Int64.to_int32 (mask_to_length raw 32)))
  | Raw_float64 -> Value.Float (Int64.float_of_bits raw)
  | Scaled_int { signed; scale; offset } ->
    let raw = mask_to_length raw t.length in
    let raw =
      if signed then Bitfield.sign_extend raw ~length:t.length else raw
    in
    Value.Float ((Int64.to_float raw *. scale) +. offset)
