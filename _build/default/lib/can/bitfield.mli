(** Bit-level insertion and extraction in CAN payloads.

    DBC-style addressing: absolute bit [b] of a payload lives in byte
    [b / 8] at in-byte position [b mod 8] (bit 0 = least significant).
    Little-endian (Intel) fields occupy ascending absolute bits starting at
    the field's LSB; big-endian (Motorola) fields start at the MSB and walk
    down within a byte, then jump to bit 7 of the following byte. *)

type byte_order = Little_endian | Big_endian

val insert :
  bytes -> byte_order -> start_bit:int -> length:int -> int64 -> unit
(** [insert payload order ~start_bit ~length raw] writes the low [length]
    bits of [raw] into the payload in place.
    @raise Invalid_argument if the field does not fit the payload, or
    [length] is not in 1..64. *)

val extract : bytes -> byte_order -> start_bit:int -> length:int -> int64
(** Read a field back as an unsigned value in the low [length] bits. *)

val sign_extend : int64 -> length:int -> int64
(** Interpret the low [length] bits as two's complement. *)

val fits : dlc:int -> byte_order -> start_bit:int -> length:int -> bool
(** Does the field lie inside a [dlc]-byte payload? *)
