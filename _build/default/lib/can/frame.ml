type format = Base | Extended

type t = { id : int; format : format; data : bytes }

let max_base_id = 0x7FF
let max_extended_id = 0x1FFFFFFF

let make ?(format = Base) ~id ~data () =
  let max_id = match format with Base -> max_base_id | Extended -> max_extended_id in
  if id < 0 || id > max_id then invalid_arg "Frame.make: identifier out of range";
  if Bytes.length data > 8 then invalid_arg "Frame.make: payload exceeds 8 bytes";
  { id; format; data = Bytes.copy data }

let dlc t = Bytes.length t.data

let equal a b =
  a.id = b.id && a.format = b.format && Bytes.equal a.data b.data

let compare_priority a b =
  let c = Int.compare a.id b.id in
  if c <> 0 then c
  else
    let rank = function Base -> 0 | Extended -> 1 in
    Int.compare (rank a.format) (rank b.format)

let pp ppf t =
  let hex = Buffer.create 16 in
  Bytes.iter (fun c -> Buffer.add_string hex (Printf.sprintf "%02X" (Char.code c))) t.data;
  Fmt.pf ppf "0x%03X%s [%d] %s" t.id
    (match t.format with Base -> "" | Extended -> "x")
    (dlc t) (Buffer.contents hex)
