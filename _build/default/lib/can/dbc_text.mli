(** Reading and writing a practical subset of the Vector DBC text format.

    Downstream users usually already have a `.dbc` for their vehicle; this
    lets the bolt-on monitor consume it directly.  Supported statements:

    {v
    BO_ <id> <MsgName>: <dlc> <sender>
     SG_ <SigName> : <start>|<len>@<endian><sign> (<scale>,<offset>) [<min>|<max>] "<unit>" <receivers>
    BS_: / VERSION / NS_ / BU_ / CM_ / BA_*  -- ignored
    v}

    Endianness digit as in DBC: [1] = little endian (Intel), [0] = big
    endian (Motorola).  Sign: [+] unsigned, [-] signed.  A scale of 1 and
    offset 0 with length 1 maps to a boolean-looking raw flag but is kept
    as a scaled integer — the DBC format does not distinguish.

    Message periods are read from the common [GenMsgCycleTime] attribute
    when present ([BA_ "GenMsgCycleTime" BO_ <id> <ms>;]); messages
    without one default to [default_period_ms]. *)

val default_period_ms : int
(** 100 ms, a common default for state broadcast messages. *)

val of_string : string -> (Dbc.t, string) result
(** Parse; the first offending line is reported. *)

val load : string -> (Dbc.t, string) result

val to_string : Dbc.t -> string
(** Render as DBC text.  Raw float32/float64 codings are emitted as
    [SIG_VALTYPE_] statements, matching how real tools mark IEEE floats;
    [of_string] understands them again. *)

val save : string -> Dbc.t -> unit
