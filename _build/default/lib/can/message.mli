(** A CAN message definition: identifier, payload size, broadcast period and
    the signals packed into the payload. *)

type t = private {
  name : string;
  id : int;
  format : Frame.format;
  dlc : int;
  period_ms : int;
  codings : Coding.t list;
}

val make :
  ?format:Frame.format -> name:string -> id:int -> dlc:int ->
  period_ms:int -> codings:Coding.t list -> unit -> t
(** Validates that every coding fits the payload and that no two codings
    overlap a bit.  @raise Invalid_argument otherwise. *)

val signal_names : t -> string list

val encode :
  t -> lookup:(string -> Monitor_signal.Value.t option) -> Frame.t
(** Build a frame, pulling each signal's current value from [lookup];
    signals the lookup does not know are encoded as zero bits. *)

val decode : t -> Frame.t -> (string * Monitor_signal.Value.t) list
(** @raise Invalid_argument if the frame id or dlc does not match. *)

val pp : Format.formatter -> t -> unit
