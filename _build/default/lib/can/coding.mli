(** How one signal is represented inside a CAN payload.

    Classic automotive signals are scaled integers ([phys = raw * scale +
    offset]).  The prototype platform in the paper, however, exchanged raw
    IEEE floats between Simulink-generated ECUs, which is what lets NaN and
    infinity faults travel over the network — so raw float32/float64
    codings are supported alongside scaled integers, booleans and enums. *)

type representation =
  | Scaled_int of { signed : bool; scale : float; offset : float }
  | Raw_float32   (** length must be 32 *)
  | Raw_float64   (** length must be 64 *)
  | Raw_bool      (** length must be 1 *)
  | Raw_enum      (** unsigned integer index *)

type t = {
  signal_name : string;  (** name of the {!Monitor_signal.Def.t} carried *)
  start_bit : int;
  length : int;
  byte_order : Bitfield.byte_order;
  repr : representation;
}

val make :
  signal_name:string -> start_bit:int -> length:int ->
  byte_order:Bitfield.byte_order -> repr:representation -> t
(** @raise Invalid_argument on representation/length mismatches. *)

val encode : t -> Monitor_signal.Value.t -> int64
(** Raw field bits for a value.  Scaled integers are rounded and saturated
    to the representable range; NaN on a scaled-int signal saturates to 0
    raw (information loss a real DBC coding would also suffer). *)

val decode : t -> int64 -> Monitor_signal.Value.t
(** Interpret raw field bits. *)

val raw_range : t -> (int64 * int64) option
(** Representable raw range for integer representations; [None] for raw
    floats. *)
