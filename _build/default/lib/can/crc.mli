(** CRC-15 as used by CAN 2.0 (polynomial x^15+x^14+x^10+x^8+x^7+x^4+x^3+1,
    i.e. 0x4599).

    The bus model computes the real CRC when building the frame bit image,
    both for fidelity and because stuff-bit counts (and hence frame timing)
    depend on the CRC bits. *)

val crc15 : bool list -> int
(** CRC over a bit sequence, MSB-first, initial value 0. *)

val crc15_bits : bool list -> bool list
(** The 15 CRC bits of a sequence, MSB first. *)
