(** Mode-encoding state machines.

    The paper avoids nesting temporal operators "by using state machines
    when needed": a machine tracks modal system state (ACC engaged, target
    acquired, headway-low-with-deadline, ...) and formulas refer to the
    current mode with [In_mode].  Guards are immediate-fragment formulas;
    [After]/[When_after] guards add the timeout idiom that replaces nested
    "if low then recover within d" temporal formulas. *)

type guard =
  | When of Formula.t           (** fires when the formula is [True] *)
  | After of float              (** fires once the state is [d] seconds old *)
  | When_after of Formula.t * float
      (** formula [True] and the state at least [d] seconds old *)

type transition = { source : string; guard : guard; target : string }

type t = private {
  name : string;
  initial : string;
  states : string list;
  transitions : transition list;
}

val make :
  name:string -> initial:string -> states:string list ->
  transitions:transition list -> t
(** Validates that state names are distinct, the initial state and all
    transition endpoints are declared, and every guard formula is in the
    immediate fragment.  @raise Invalid_argument otherwise. *)

(** {2 Runtime} *)

type runtime

val start : t -> runtime

val machine : runtime -> t

val current : runtime -> string

val time_in_state : runtime -> float
(** Seconds since entering the current state (0 before the first tick). *)

val step :
  runtime -> mode_lookup:(string -> string option) ->
  Monitor_trace.Snapshot.t -> string
(** Advance one tick: every guard's expressions are stepped (so [prev] and
    [delta] stay aligned across all transitions), then the first outgoing
    transition of the current state, in declaration order, whose guard
    fires is taken.  At most one transition per tick.  [mode_lookup] lets
    guards reference other machines; by convention the monitor passes
    pre-step (previous tick) modes.  Returns the new current state. *)

val reset : runtime -> unit
