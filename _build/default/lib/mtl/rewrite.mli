(** Formula simplification.

    The monitor's per-tick cost grows with formula size and window count,
    and hand-written or machine-generated rules often carry dead weight
    (double negations, constant subformulas, nested identical windows).
    [simplify] applies a fixpoint of verdict-preserving rewrites; the
    equivalence with the original formula under {!Offline.eval} is enforced
    by property tests over random formulas and traces.

    Rewrites must be sound in the three-valued semantics: e.g. [f and f]
    rewrites to [f], but [f or not f] does {e not} rewrite to [true]
    (it is [Unknown] when [f] is). *)

val simplify : Formula.t -> Formula.t
(** Fixpoint of:
    - constant folding through connectives ([true and f] -> [f], ...);
    - double negation elimination, De Morgan when it removes a negation;
    - idempotence ([f and f] -> [f], [f or f] -> [f]);
    - [Implies (a, b)] -> [Or (Not a, b)] normalisation;
    - comparison folding on constant operands (IEEE semantics);
    - temporal identities: [always[a,b] true] -> [true],
      [eventually[a,b] false] -> [false] (and past duals; only for
      intervals anchored at the present, [a = 0], where the window is
      never vacuous), nested same-operator windows with zero-anchored
      intervals merge ([always[0,x] always[0,y] f] -> [always[0,x+y] f]);
    - [warmup] with a [false] trigger or zero hold behaves as its body
      only when the trigger cannot fire; a constant-[true] trigger makes
      the whole formula undecidable, which has no simpler form. *)

val simplify_expr : Expr.t -> Expr.t
(** Constant folding and algebraic identities on expressions
    ([e + 0.0] -> [e], [e * 1.0] -> [e], [abs] of a constant, ...).
    Floating-point-safe: only rewrites that preserve IEEE semantics for
    every input, including NaN, are applied (so [e * 0.0] is kept). *)

val size_reduction : Formula.t -> int * int
(** (before, after) node counts — for reporting. *)
