(** Offline (whole-log) evaluation — the reference semantics.

    The paper performed all its monitoring offline on stored log data; this
    evaluator does the same: given the full snapshot stream it computes the
    spec's verdict at every tick.  It is also the executable definition of
    the logic's semantics, against which the constant-memory {!Online}
    monitor is property-tested. *)

type outcome = {
  times : float array;
  verdicts : Verdict.t array;  (** verdict of the formula at each tick *)
  modes : (string * string array) list;
      (** per machine, the post-transition state at each tick *)
}

val eval : Spec.t -> Monitor_trace.Snapshot.t list -> outcome
(** Snapshots must be in strictly increasing time order.
    @raise Invalid_argument otherwise.

    Semantics of bounded operators over the finite log, with [T] the set of
    sample times:
    - [Always [a,b] f] at time [t]: [False] if [f] is [False] at some
      sample in [\[t+a, t+b\]]; [Unknown] if the window runs past the log's
      end or contains an [Unknown] without a [False]; else [True] (an empty
      complete window is vacuously [True]).
    - [Eventually] is the dual ([True] dominates; an empty complete window
      is [False]).
    - [Once [a,b] f] at [t] looks at samples in [\[t-b, t-a\]]; a window
      truncated by the log's start yields [Unknown] unless a [True] (for
      [Once]) or [False] (for [Historically]) already decides it — this is
      the "warm-up" behaviour.
    - [Warmup (trigger, hold, body)] is [Unknown] at [t] when [trigger] was
      [True] at some sample in [\[t-hold, t\]], else the verdict of
      [body]. *)

val count : Verdict.t array -> Verdict.t -> int

val satisfied : outcome -> bool
(** No [False] verdict anywhere. *)

val first_violation : outcome -> (int * float) option
(** Index and time of the first [False] verdict. *)
