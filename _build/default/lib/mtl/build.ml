let float x = Expr.Const x

let var s = Expr.Signal s

let prev e = Expr.Prev e

let delta e = Expr.Delta e

let rate e = Expr.Rate e

let fresh_delta s = Expr.Fresh_delta s

let age s = Expr.Age s

let abs e = Expr.Abs e

let neg e = Expr.Neg e

let ( +. ) a b = Expr.Add (a, b)

let ( -. ) a b = Expr.Sub (a, b)

let ( *. ) a b = Expr.Mul (a, b)

let ( /. ) a b = Expr.Div (a, b)

let min_ a b = Expr.Min (a, b)

let max_ a b = Expr.Max (a, b)

let ( <. ) a b = Formula.Cmp (a, Formula.Lt, b)

let ( <=. ) a b = Formula.Cmp (a, Formula.Le, b)

let ( >. ) a b = Formula.Cmp (a, Formula.Gt, b)

let ( >=. ) a b = Formula.Cmp (a, Formula.Ge, b)

let ( ==. ) a b = Formula.Cmp (a, Formula.Eq, b)

let ( <>. ) a b = Formula.Cmp (a, Formula.Ne, b)

let signal s = Formula.Bool_signal s

let fresh s = Formula.Fresh s

let known s = Formula.Known s

let mode m s = Formula.In_mode (m, s)

let tt = Formula.Const true

let ff = Formula.Const false

let not_ f = Formula.Not f

let ( &&& ) a b = Formula.And (a, b)

let ( ||| ) a b = Formula.Or (a, b)

let ( ==> ) a b = Formula.Implies (a, b)

let always ?(from = 0.0) ~within f =
  Formula.Always (Formula.interval from within, f)

let eventually ?(from = 0.0) ~within f =
  Formula.Eventually (Formula.interval from within, f)

let once ?(from = 0.0) ~within f = Formula.Once (Formula.interval from within, f)

let historically ?(from = 0.0) ~within f =
  Formula.Historically (Formula.interval from within, f)

let warmup ~trigger ~hold body = Formula.Warmup { trigger; hold; body }

let conj = function
  | [] -> tt
  | f :: rest -> List.fold_left ( &&& ) f rest

let disj = function
  | [] -> ff
  | f :: rest -> List.fold_left ( ||| ) f rest
