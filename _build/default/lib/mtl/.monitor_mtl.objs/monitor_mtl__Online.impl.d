lib/mtl/online.ml: Float Formula Immediate List Monitor_trace Queue Spec State_machine Verdict
