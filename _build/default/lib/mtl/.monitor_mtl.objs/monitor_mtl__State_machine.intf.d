lib/mtl/state_machine.mli: Formula Monitor_trace
