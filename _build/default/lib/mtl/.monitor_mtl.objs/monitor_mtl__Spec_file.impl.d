lib/mtl/spec_file.ml: Buffer Expr Fmt Formula Fun In_channel Lexer List Monitor_util Parser Printf Spec State_machine String
