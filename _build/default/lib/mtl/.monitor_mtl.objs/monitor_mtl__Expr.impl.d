lib/mtl/expr.ml: Float Fmt Hashtbl Int64 List Monitor_signal Monitor_trace Monitor_util Option String
