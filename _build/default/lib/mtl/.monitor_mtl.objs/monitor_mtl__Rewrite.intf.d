lib/mtl/rewrite.mli: Expr Formula
