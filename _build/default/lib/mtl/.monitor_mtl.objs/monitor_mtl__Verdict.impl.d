lib/mtl/verdict.ml: Format List
