lib/mtl/explain.ml: Array Buffer Expr Formula List Monitor_trace Monitor_util Offline Option Printf Spec String Verdict
