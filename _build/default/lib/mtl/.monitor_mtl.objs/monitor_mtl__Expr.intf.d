lib/mtl/expr.mli: Format Monitor_trace
