lib/mtl/immediate.mli: Formula Monitor_trace Verdict
