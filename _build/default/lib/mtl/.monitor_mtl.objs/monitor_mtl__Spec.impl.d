lib/mtl/spec.ml: Expr Fmt Formula Hashtbl List Printf State_machine
