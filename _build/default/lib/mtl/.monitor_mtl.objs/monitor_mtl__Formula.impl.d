lib/mtl/formula.ml: Bool Expr Float Fmt Hashtbl List Monitor_util String
