lib/mtl/immediate.ml: Expr Fmt Formula Monitor_signal Monitor_trace Result String Verdict
