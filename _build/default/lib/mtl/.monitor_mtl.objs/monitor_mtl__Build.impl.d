lib/mtl/build.ml: Expr Formula List
