lib/mtl/spec_file.mli: Spec
