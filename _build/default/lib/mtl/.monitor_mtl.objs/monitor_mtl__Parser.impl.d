lib/mtl/parser.ml: Array Expr Formula Lexer Printf Result
