lib/mtl/lexer.mli:
