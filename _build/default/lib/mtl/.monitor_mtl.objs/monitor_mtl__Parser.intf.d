lib/mtl/parser.mli: Expr Formula Lexer
