lib/mtl/explain.mli: Formula Monitor_trace Spec Verdict
