lib/mtl/offline.mli: Monitor_trace Spec Verdict
