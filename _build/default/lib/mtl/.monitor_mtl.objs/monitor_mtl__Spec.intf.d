lib/mtl/spec.mli: Expr Format Formula State_machine
