lib/mtl/online.mli: Monitor_trace Spec Verdict
