lib/mtl/build.mli: Expr Formula
