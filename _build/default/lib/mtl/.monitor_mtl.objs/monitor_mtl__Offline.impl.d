lib/mtl/offline.ml: Array Formula Immediate List Monitor_trace Option Spec State_machine Verdict
