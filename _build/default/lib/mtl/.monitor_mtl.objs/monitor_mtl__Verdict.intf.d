lib/mtl/verdict.mli: Format
