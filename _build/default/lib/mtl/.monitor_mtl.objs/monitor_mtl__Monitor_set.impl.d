lib/mtl/monitor_set.ml: Hashtbl List Online Option Spec Verdict
