lib/mtl/lexer.ml: Array Buffer List Printf String
