lib/mtl/state_machine.ml: Formula Hashtbl Immediate List Monitor_trace Option String Verdict
