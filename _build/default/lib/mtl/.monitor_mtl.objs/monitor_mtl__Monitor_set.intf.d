lib/mtl/monitor_set.mli: Monitor_trace Online Spec
