lib/mtl/rewrite.ml: Expr Float Formula Int64
