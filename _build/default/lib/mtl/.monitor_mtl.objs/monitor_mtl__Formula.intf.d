lib/mtl/formula.mli: Expr Format
