(** An OCaml embedded DSL for building formulas programmatically.

    For generated or parameterised rules, building ASTs beats string
    concatenation (no quoting, no parse errors at runtime).  Open the
    module locally:

    {[
      let rule =
        Build.(
          (signal "BrakeRequested" &&& (signal "Velocity" >. float 5.0))
          ==> eventually ~within:0.5 (signal "RequestedDecel" <=. float 0.0))
    ]} *)

(** {2 Expressions} *)

val float : float -> Expr.t

val var : string -> Expr.t
(** The signal's numeric value. *)

val prev : Expr.t -> Expr.t

val delta : Expr.t -> Expr.t

val rate : Expr.t -> Expr.t

val fresh_delta : string -> Expr.t

val age : string -> Expr.t

val abs : Expr.t -> Expr.t

val neg : Expr.t -> Expr.t

val ( +. ) : Expr.t -> Expr.t -> Expr.t

val ( -. ) : Expr.t -> Expr.t -> Expr.t

val ( *. ) : Expr.t -> Expr.t -> Expr.t

val ( /. ) : Expr.t -> Expr.t -> Expr.t

val min_ : Expr.t -> Expr.t -> Expr.t

val max_ : Expr.t -> Expr.t -> Expr.t

(** {2 Atoms} *)

val ( <. ) : Expr.t -> Expr.t -> Formula.t

val ( <=. ) : Expr.t -> Expr.t -> Formula.t

val ( >. ) : Expr.t -> Expr.t -> Formula.t

val ( >=. ) : Expr.t -> Expr.t -> Formula.t

val ( ==. ) : Expr.t -> Expr.t -> Formula.t

val ( <>. ) : Expr.t -> Expr.t -> Formula.t

val signal : string -> Formula.t
(** Truthiness of a (boolean) signal. *)

val fresh : string -> Formula.t

val known : string -> Formula.t

val mode : string -> string -> Formula.t

val tt : Formula.t

val ff : Formula.t

(** {2 Connectives and temporal operators} *)

val not_ : Formula.t -> Formula.t

val ( &&& ) : Formula.t -> Formula.t -> Formula.t

val ( ||| ) : Formula.t -> Formula.t -> Formula.t

val ( ==> ) : Formula.t -> Formula.t -> Formula.t

val always : ?from:float -> within:float -> Formula.t -> Formula.t
(** [always ~from:a ~within:b f] is G[a,b] f; [from] defaults to 0. *)

val eventually : ?from:float -> within:float -> Formula.t -> Formula.t

val once : ?from:float -> within:float -> Formula.t -> Formula.t

val historically : ?from:float -> within:float -> Formula.t -> Formula.t

val warmup : trigger:Formula.t -> hold:float -> Formula.t -> Formula.t

val conj : Formula.t list -> Formula.t
(** Right-nested conjunction; [tt] on []. *)

val disj : Formula.t list -> Formula.t
(** Right-nested disjunction; [ff] on []. *)
