type t = True | False | Unknown

let of_bool b = if b then True else False

let not_ = function True -> False | False -> True | Unknown -> Unknown

let and_ a b =
  match a, b with
  | False, _ | _, False -> False
  | True, True -> True
  | Unknown, _ | _, Unknown -> Unknown

let or_ a b =
  match a, b with
  | True, _ | _, True -> True
  | False, False -> False
  | Unknown, _ | _, Unknown -> Unknown

let implies a b = or_ (not_ a) b

let equal a b =
  match a, b with
  | True, True | False, False | Unknown, Unknown -> true
  | (True | False | Unknown), _ -> false

let to_string = function True -> "T" | False -> "F" | Unknown -> "?"

let pp ppf v = Format.pp_print_string ppf (to_string v)

let conj vs = List.fold_left and_ True vs

let disj vs = List.fold_left or_ False vs
