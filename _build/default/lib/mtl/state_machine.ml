type guard =
  | When of Formula.t
  | After of float
  | When_after of Formula.t * float

type transition = { source : string; guard : guard; target : string }

type t = {
  name : string;
  initial : string;
  states : string list;
  transitions : transition list;
}

let guard_formula = function
  | When f | When_after (f, _) -> Some f
  | After _ -> None

let make ~name ~initial ~states ~transitions =
  let declared = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if Hashtbl.mem declared s then
        invalid_arg ("State_machine.make: duplicate state " ^ s);
      Hashtbl.add declared s ())
    states;
  if not (Hashtbl.mem declared initial) then
    invalid_arg ("State_machine.make: undeclared initial state " ^ initial);
  List.iter
    (fun tr ->
      if not (Hashtbl.mem declared tr.source) then
        invalid_arg ("State_machine.make: undeclared source state " ^ tr.source);
      if not (Hashtbl.mem declared tr.target) then
        invalid_arg ("State_machine.make: undeclared target state " ^ tr.target);
      (match tr.guard with
       | After d | When_after (_, d) ->
         if d < 0.0 then invalid_arg "State_machine.make: negative timeout"
       | When _ -> ());
      match guard_formula tr.guard with
      | None -> ()
      | Some f -> begin
        match Immediate.compile f with
        | Ok _ -> ()
        | Error msg -> invalid_arg ("State_machine.make: guard " ^ msg)
      end)
    transitions;
  { name; initial; states; transitions }

(* Runtime ---------------------------------------------------------------- *)

type compiled_transition = {
  t_source : string;
  t_target : string;
  t_timeout : float option;
  t_cond : Immediate.t option;
}

type runtime = {
  def : t;
  compiled : compiled_transition list;
  mutable state : string;
  mutable entered_at : float option;  (* None before the first tick *)
  mutable now : float;
}

let compile_transition tr =
  let t_timeout =
    match tr.guard with
    | After d | When_after (_, d) -> Some d
    | When _ -> None
  in
  let t_cond = Option.map Immediate.compile_exn (guard_formula tr.guard) in
  { t_source = tr.source; t_target = tr.target; t_timeout; t_cond }

let start def =
  { def;
    compiled = List.map compile_transition def.transitions;
    state = def.initial;
    entered_at = None;
    now = 0.0 }

let machine rt = rt.def

let current rt = rt.state

let time_in_state rt =
  match rt.entered_at with
  | None -> 0.0
  | Some t -> rt.now -. t

let step rt ~mode_lookup snapshot =
  let time = snapshot.Monitor_trace.Snapshot.time in
  rt.now <- time;
  if rt.entered_at = None then rt.entered_at <- Some time;
  (* Step every guard's expression history first, whichever state we are
     in: Prev/Delta inside guards must advance on every tick. *)
  let verdicts =
    List.map
      (fun ct ->
        let v =
          match ct.t_cond with
          | Some cond -> Some (Immediate.eval cond ~mode_lookup snapshot)
          | None -> None
        in
        (ct, v))
      rt.compiled
  in
  let elapsed = time_in_state rt in
  let fires (ct, v) =
    String.equal ct.t_source rt.state
    &&
    let timeout_ok =
      match ct.t_timeout with None -> true | Some d -> elapsed >= d
    in
    let cond_ok =
      match v with None -> true | Some verdict -> Verdict.equal verdict Verdict.True
    in
    timeout_ok && cond_ok
  in
  (match List.find_opt fires verdicts with
   | Some (ct, _) ->
     rt.state <- ct.t_target;
     rt.entered_at <- Some time
   | None -> ());
  rt.state

let reset rt =
  rt.state <- rt.def.initial;
  rt.entered_at <- None;
  rt.now <- 0.0;
  List.iter
    (fun ct -> match ct.t_cond with Some c -> Immediate.reset c | None -> ())
    rt.compiled
