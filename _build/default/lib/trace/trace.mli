(** In-memory signal traces.

    A trace is an append-only, time-ordered sequence of {!Record.t}.  The
    whole toolchain communicates through traces: the HIL logger produces
    one, the fault injector perturbs the system that produces one, and the
    monitor-based oracle consumes one offline — the same offline-log
    workflow the paper used. *)

type t

val create : unit -> t

val append : t -> Record.t -> unit
(** @raise Invalid_argument if the record's time is before the last appended
    time (traces are built in bus order). *)

val length : t -> int

val is_empty : t -> bool

val get : t -> int -> Record.t
(** @raise Invalid_argument if out of range. *)

val iter : (Record.t -> unit) -> t -> unit

val fold : ('acc -> Record.t -> 'acc) -> 'acc -> t -> 'acc

val to_list : t -> Record.t list

val of_list : Record.t list -> t
(** Sorts by time (stable) before building. *)

val duration : t -> float
(** Last timestamp minus first; 0.0 for traces with <2 records. *)

val start_time : t -> float option

val end_time : t -> float option

val signal_names : t -> string list
(** Distinct signal names in first-appearance order. *)

val slice : t -> from_time:float -> to_time:float -> t
(** Records with [from_time <= time < to_time]. *)

val filter_signals : t -> string list -> t
(** Keep only records of the named signals. *)

val merge : t -> t -> t
(** Time-ordered merge of two traces (stable: on ties, records of the first
    trace come first). *)

val last_value_before : t -> name:string -> time:float ->
  Monitor_signal.Value.t option
(** Most recent observation of [name] at or before [time]. *)
