lib/trace/csv.mli: Trace
