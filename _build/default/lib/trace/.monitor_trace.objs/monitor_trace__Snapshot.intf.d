lib/trace/snapshot.mli: Format Monitor_signal
