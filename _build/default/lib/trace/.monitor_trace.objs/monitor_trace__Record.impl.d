lib/trace/record.ml: Float Fmt Monitor_signal
