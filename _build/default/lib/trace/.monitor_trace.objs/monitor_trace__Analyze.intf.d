lib/trace/analyze.mli: Trace
