lib/trace/multirate.ml: Hashtbl List Monitor_signal Record Snapshot String Trace
