lib/trace/analyze.ml: Buffer Float Hashtbl Int64 List Monitor_signal Monitor_util Printf Record String Trace
