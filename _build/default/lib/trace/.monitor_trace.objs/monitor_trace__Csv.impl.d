lib/trace/csv.ml: Buffer Float Fun In_channel List Monitor_signal Option Printf Record String Trace
