lib/trace/record.mli: Format Monitor_signal
