lib/trace/trace.mli: Monitor_signal Record
