lib/trace/multirate.mli: Snapshot Trace
