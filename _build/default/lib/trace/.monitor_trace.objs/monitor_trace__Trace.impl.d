lib/trace/trace.ml: Array Hashtbl List Monitor_signal Record String
