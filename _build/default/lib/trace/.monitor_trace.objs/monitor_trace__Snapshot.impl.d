lib/trace/snapshot.ml: Fmt List Monitor_signal Option String
