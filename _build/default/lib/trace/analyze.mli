(** Trace statistics — the "understand the test trace" half of triage.

    The paper notes that part of a monitor's value is helping developers
    understand test traces (§V-A); these summaries answer the first
    questions an engineer asks of a capture: which signals are present, at
    what rate, with how much timing jitter, over what value ranges, and
    with how many exceptional samples. *)

type signal_stats = {
  name : string;
  samples : int;
  first_time : float;
  last_time : float;
  mean_period : float;        (** 0 with fewer than 2 samples *)
  min_period : float;
  max_period : float;
  period_stddev : float;      (** publication jitter *)
  value_min : float option;   (** numeric view; None for all-NaN signals *)
  value_max : float option;
  value_mean : float option;
  exceptional_samples : int;  (** NaN or infinite floats *)
  distinct_values : int;      (** capped at 1000 *)
}

type t = {
  duration : float;
  records : int;
  signals : signal_stats list;  (** in first-appearance order *)
}

val analyze : Trace.t -> t

val render : t -> string
(** A table, one row per signal. *)

val find : t -> string -> signal_stats option
