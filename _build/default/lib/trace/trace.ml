type t = {
  mutable data : Record.t array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let grow t =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 64 else cap * 2 in
  let fresh =
    Array.make new_cap (Record.make ~time:0.0 ~name:"" ~value:(Monitor_signal.Value.Bool false))
  in
  Array.blit t.data 0 fresh 0 t.len;
  t.data <- fresh

let append t r =
  if t.len > 0 && r.Record.time < t.data.(t.len - 1).Record.time then
    invalid_arg "Trace.append: record out of time order";
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- r;
  t.len <- t.len + 1

let length t = t.len

let is_empty t = t.len = 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get: index out of range";
  t.data.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun r -> acc := f !acc r) t;
  !acc

let to_list t = List.rev (fold (fun acc r -> r :: acc) [] t)

let of_list rs =
  let t = create () in
  List.iter (append t) (List.stable_sort Record.compare_time rs);
  t

let start_time t = if t.len = 0 then None else Some t.data.(0).Record.time

let end_time t = if t.len = 0 then None else Some t.data.(t.len - 1).Record.time

let duration t =
  match start_time t, end_time t with
  | Some a, Some b -> b -. a
  | _, _ -> 0.0

let signal_names t =
  let seen = Hashtbl.create 16 in
  let names = ref [] in
  iter
    (fun r ->
      if not (Hashtbl.mem seen r.Record.name) then begin
        Hashtbl.add seen r.Record.name ();
        names := r.Record.name :: !names
      end)
    t;
  List.rev !names

let slice t ~from_time ~to_time =
  let out = create () in
  iter
    (fun r ->
      if r.Record.time >= from_time && r.Record.time < to_time then append out r)
    t;
  out

let filter_signals t names =
  let keep = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace keep n ()) names;
  let out = create () in
  iter (fun r -> if Hashtbl.mem keep r.Record.name then append out r) t;
  out

let merge a b =
  let out = create () in
  let i = ref 0 and j = ref 0 in
  while !i < a.len || !j < b.len do
    let take_a =
      if !i >= a.len then false
      else if !j >= b.len then true
      else a.data.(!i).Record.time <= b.data.(!j).Record.time
    in
    if take_a then begin
      append out a.data.(!i);
      incr i
    end
    else begin
      append out b.data.(!j);
      incr j
    end
  done;
  out

let last_value_before t ~name ~time =
  (* Binary search for the last index with time <= target, then scan back
     for the named signal. *)
  let rec scan i =
    if i < 0 then None
    else
      let r = t.data.(i) in
      if r.Record.time <= time && String.equal r.Record.name name then
        Some r.Record.value
      else scan (i - 1)
  in
  let rec upper lo hi =
    (* last index with time <= target, or -1 *)
    if lo > hi then hi
    else
      let mid = (lo + hi) / 2 in
      if t.data.(mid).Record.time <= time then upper (mid + 1) hi
      else upper lo (mid - 1)
  in
  if t.len = 0 then None else scan (upper 0 (t.len - 1))
