(** A single timestamped signal observation.

    Traces are sequences of records — exactly what a passive bus logger
    yields after decoding frames: "at time [t], signal [name] was observed
    with [value]". *)

type t = {
  time : float;          (** seconds since trace start *)
  name : string;         (** signal name *)
  value : Monitor_signal.Value.t;
}

val make : time:float -> name:string -> value:Monitor_signal.Value.t -> t

val compare_time : t -> t -> int
(** Order by timestamp only (stable sorts keep bus order for ties). *)

val pp : Format.formatter -> t -> unit
