(** CSV serialisation of traces.

    Three columns: [time,signal,value].  Floats are written with enough
    precision to round-trip, including [nan], [inf] and [-inf]; booleans as
    [true]/[false]; enums as [#k].  This is the interchange format between
    the HIL logger, stored logs and the offline oracle — the counterpart of
    the ControlDesk trace-capture exports used in the paper. *)

val to_string : Trace.t -> string

val to_channel : out_channel -> Trace.t -> unit

val save : string -> Trace.t -> unit
(** Write to a file path. *)

val of_string : string -> (Trace.t, string) result
(** Parse; reports the first offending line on error. *)

val load : string -> (Trace.t, string) result
