let header = "time,signal,value"

let value_to_field v =
  match v with
  | Monitor_signal.Value.Float x ->
    if Float.is_nan x then "nan"
    else if x = Float.infinity then "inf"
    else if x = Float.neg_infinity then "-inf"
    else Printf.sprintf "%.17g" x
  | Monitor_signal.Value.Bool b -> string_of_bool b
  | Monitor_signal.Value.Enum i -> "#" ^ string_of_int i

let record_to_line (r : Record.t) =
  Printf.sprintf "%.6f,%s,%s" r.time r.name (value_to_field r.value)

let to_string t =
  let buf = Buffer.create (Trace.length t * 32) in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Trace.iter
    (fun r ->
      Buffer.add_string buf (record_to_line r);
      Buffer.add_char buf '\n')
    t;
  Buffer.contents buf

let to_channel oc t = output_string oc (to_string t)

let save path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel oc t)

let parse_value s =
  match s with
  | "nan" -> Some (Monitor_signal.Value.Float Float.nan)
  | "inf" -> Some (Monitor_signal.Value.Float Float.infinity)
  | "-inf" -> Some (Monitor_signal.Value.Float Float.neg_infinity)
  | "true" -> Some (Monitor_signal.Value.Bool true)
  | "false" -> Some (Monitor_signal.Value.Bool false)
  | _ ->
    if String.length s > 1 && s.[0] = '#' then
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some i -> Some (Monitor_signal.Value.Enum i)
      | None -> None
    else
      Option.map (fun f -> Monitor_signal.Value.Float f) (float_of_string_opt s)

let parse_line lineno line =
  match String.split_on_char ',' line with
  | [ time_s; name; value_s ] -> begin
    match float_of_string_opt time_s, parse_value value_s with
    | Some time, Some value -> Ok (Record.make ~time ~name ~value)
    | None, _ -> Error (Printf.sprintf "line %d: bad timestamp %S" lineno time_s)
    | _, None -> Error (Printf.sprintf "line %d: bad value %S" lineno value_s)
  end
  | _ -> Error (Printf.sprintf "line %d: expected 3 fields" lineno)

let of_string s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno acc = function
    | [] -> Ok (Trace.of_list (List.rev acc))
    | "" :: rest -> go (lineno + 1) acc rest
    | line :: rest ->
      if lineno = 1 && String.equal line header then go 2 acc rest
      else begin
        match parse_line lineno line with
        | Ok r -> go (lineno + 1) (r :: acc) rest
        | Error _ as e -> e
      end
  in
  go 1 [] lines

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error msg -> Error msg
