type signal_stats = {
  name : string;
  samples : int;
  first_time : float;
  last_time : float;
  mean_period : float;
  min_period : float;
  max_period : float;
  period_stddev : float;
  value_min : float option;
  value_max : float option;
  value_mean : float option;
  exceptional_samples : int;
  distinct_values : int;
}

type t = {
  duration : float;
  records : int;
  signals : signal_stats list;
}

type acc = {
  mutable count : int;
  mutable first : float;
  mutable last : float;
  mutable prev_time : float;
  periods : Monitor_util.Stats.t;
  values : Monitor_util.Stats.t;
  mutable exceptional : int;
  distinct : (int64, unit) Hashtbl.t;
}

let distinct_cap = 1000

let analyze trace =
  let table : (string, acc) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  Trace.iter
    (fun (r : Record.t) ->
      let a =
        match Hashtbl.find_opt table r.Record.name with
        | Some a -> a
        | None ->
          let a =
            { count = 0; first = r.Record.time; last = r.Record.time;
              prev_time = Float.nan;
              periods = Monitor_util.Stats.create ();
              values = Monitor_util.Stats.create ();
              exceptional = 0;
              distinct = Hashtbl.create 32 }
          in
          Hashtbl.add table r.Record.name a;
          order := r.Record.name :: !order;
          a
      in
      a.count <- a.count + 1;
      a.last <- r.Record.time;
      if not (Float.is_nan a.prev_time) then
        Monitor_util.Stats.add a.periods (r.Record.time -. a.prev_time);
      a.prev_time <- r.Record.time;
      let x = Monitor_signal.Value.as_float r.Record.value in
      if Float.is_finite x then Monitor_util.Stats.add a.values x;
      if Monitor_signal.Value.is_exceptional r.Record.value then
        a.exceptional <- a.exceptional + 1;
      if Hashtbl.length a.distinct < distinct_cap then
        Hashtbl.replace a.distinct (Int64.bits_of_float x) ())
    trace;
  let stats name =
    let a = Hashtbl.find table name in
    let with_periods f default =
      if Monitor_util.Stats.count a.periods = 0 then default
      else f a.periods
    in
    { name;
      samples = a.count;
      first_time = a.first;
      last_time = a.last;
      mean_period = with_periods Monitor_util.Stats.mean 0.0;
      min_period = with_periods Monitor_util.Stats.min_value 0.0;
      max_period = with_periods Monitor_util.Stats.max_value 0.0;
      period_stddev = with_periods Monitor_util.Stats.stddev 0.0;
      value_min =
        (if Monitor_util.Stats.count a.values = 0 then None
         else Some (Monitor_util.Stats.min_value a.values));
      value_max =
        (if Monitor_util.Stats.count a.values = 0 then None
         else Some (Monitor_util.Stats.max_value a.values));
      value_mean =
        (if Monitor_util.Stats.count a.values = 0 then None
         else Some (Monitor_util.Stats.mean a.values));
      exceptional_samples = a.exceptional;
      distinct_values = Hashtbl.length a.distinct }
  in
  { duration = Trace.duration trace;
    records = Trace.length trace;
    signals = List.rev_map stats !order }

let find t name =
  List.find_opt (fun s -> String.equal s.name name) t.signals

let render t =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%d records over %.2f s\n" t.records t.duration;
  add "%-18s %8s %9s %9s %9s %6s %12s %12s %5s\n" "signal" "samples"
    "period" "jitter" "min" "max" "val_min" "val_max" "exc";
  List.iter
    (fun s ->
      let opt = function Some x -> Printf.sprintf "%.4g" x | None -> "-" in
      add "%-18s %8d %8.1fms %8.2fms %8.1fms %5.0fms %12s %12s %5d\n" s.name
        s.samples
        (1000.0 *. s.mean_period)
        (1000.0 *. s.period_stddev)
        (1000.0 *. s.min_period)
        (1000.0 *. s.max_period)
        (opt s.value_min) (opt s.value_max) s.exceptional_samples)
    t.signals;
  Buffer.contents buf
