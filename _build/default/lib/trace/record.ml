type t = { time : float; name : string; value : Monitor_signal.Value.t }

let make ~time ~name ~value = { time; name; value }

let compare_time a b = Float.compare a.time b.time

let pp ppf r =
  Fmt.pf ppf "%.4f %s=%a" r.time r.name Monitor_signal.Value.pp r.value
