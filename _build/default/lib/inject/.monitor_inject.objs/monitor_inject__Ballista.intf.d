lib/inject/ballista.mli:
