lib/inject/fault.ml: Ballista List Monitor_hil Monitor_signal Monitor_util
