lib/inject/ballista.ml: Array Float Int64
