lib/inject/campaign.mli: Fault Monitor_hil
