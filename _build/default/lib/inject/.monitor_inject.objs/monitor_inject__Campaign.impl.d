lib/inject/campaign.ml: Fault Int64 List Monitor_fsracc Monitor_hil Monitor_util Printf String
