lib/inject/fault.mli: Monitor_hil Monitor_signal Monitor_util
