let floats =
  [| Float.nan;
     Float.infinity;
     Float.neg_infinity;
     0.0;
     -0.0;
     1.0;
     -1.0;
     Float.pi;
     Float.pi /. 2.0;
     Float.pi /. 4.0;
     2.0 *. Float.pi;
     Float.exp 1.0;
     Float.exp 1.0 /. 2.0;
     Float.exp 1.0 /. 4.0;
     sqrt 2.0;
     sqrt 2.0 /. 2.0;
     log 2.0;
     log 2.0 /. 2.0;
     4294967296.000001;
     4294967295.9999995;
     4.9406564584124654e-324;
     -4.9406564584124654e-324 |]

let contains x =
  let bits = Int64.bits_of_float x in
  Array.exists (fun y -> Int64.equal bits (Int64.bits_of_float y)) floats
