module Prng = Monitor_util.Prng
module Def = Monitor_signal.Def
module Value = Monitor_signal.Value

type kind =
  | Random_value
  | Ballista
  | Bit_flip of int

let kind_label = function
  | Random_value -> "Random"
  | Ballista -> "Ballista"
  | Bit_flip _ -> "Bitflips"

let random_float_range = (-2000.0, 2000.0)

let random_value prng (def : Def.t) =
  match def.Def.kind with
  | Def.Float_kind _ ->
    let lo, hi = random_float_range in
    Value.Float (Prng.float_range prng lo hi)
  | Def.Bool_kind -> Value.Bool (Prng.bool prng)
  | Def.Enum_kind _ ->
    (* [0, maxint): the HIL's strong value checking rejects nearly all of
       these, as it did on the paper's testbed. *)
    Value.Enum (Prng.int prng max_int)

let random_valid_value prng (def : Def.t) =
  match def.Def.kind with
  | Def.Float_kind { min; max } -> Value.Float (Prng.float_range prng min max)
  | Def.Bool_kind -> Value.Bool (Prng.bool prng)
  | Def.Enum_kind { n_values } -> Value.Enum (Prng.int prng n_values)

let ballista_value prng (def : Def.t) =
  match def.Def.kind with
  | Def.Float_kind _ -> Value.Float (Prng.choose prng Ballista.floats)
  | Def.Bool_kind | Def.Enum_kind _ -> random_valid_value prng def

let image_width (def : Def.t) =
  match def.Def.kind with
  | Def.Float_kind _ -> 64
  | Def.Bool_kind -> 1
  | Def.Enum_kind _ -> 4

let flip_positions prng ~n_bits def =
  let width = image_width def in
  let n = min n_bits width in
  let rec draw chosen =
    if List.length chosen >= n then chosen
    else
      let candidate = Prng.int prng width in
      if List.mem candidate chosen then draw chosen
      else draw (candidate :: chosen)
  in
  List.sort compare (draw [])

let apply_flips positions value =
  match value with
  | Value.Float x ->
    Value.Float
      (Monitor_util.Float_bits.float_of_bits
         (Monitor_util.Float_bits.flip_bits
            (Monitor_util.Float_bits.bits_of_float x)
            positions))
  | Value.Bool b -> if positions = [] then Value.Bool b else Value.Bool (not b)
  | Value.Enum i ->
    let flipped =
      List.fold_left (fun acc bit -> acc lxor (1 lsl bit)) i positions
    in
    Value.Enum flipped

let command prng kind (def : Def.t) =
  let name = def.Def.name in
  match kind, def.Def.kind with
  | Random_value, _ -> Monitor_hil.Sim.Set (name, random_value prng def)
  | Ballista, _ -> Monitor_hil.Sim.Set (name, ballista_value prng def)
  | Bit_flip _, Def.Enum_kind _ ->
    (* Out-of-range enum results would be refused by the HIL type check;
       the paper substituted random valid values for such targets. *)
    Monitor_hil.Sim.Set (name, random_valid_value prng def)
  | Bit_flip n, (Def.Float_kind _ | Def.Bool_kind) ->
    let positions = flip_positions prng ~n_bits:n def in
    Monitor_hil.Sim.Set_transform (name, apply_flips positions)
