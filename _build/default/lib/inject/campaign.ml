module Prng = Monitor_util.Prng
module Sim = Monitor_hil.Sim
module Io = Monitor_fsracc.Io

type run = { run_label : string; plan : Sim.plan }

type row = {
  kind : Fault.kind;
  kind_label : string;
  target_label : string;
  targets : string list;
  runs : run list;
}

let single_target_names =
  [ "Velocity"; "TargetRange"; "TargetRelVel"; "ACCSetSpeed"; "ThrotPos";
    "AccelPedPos"; "BrakePedPres"; "SelHeadway" ]

(* Table I prints the brake-pressure signal as "BrakePedPos". *)
let target_label_of_signal = function
  | "BrakePedPres" -> "BrakePedPos"
  | s -> s

let hold_duration = 20.0

let default_start = 2.0

let plan_of_commands ~start commands =
  List.map (fun cmd -> (start, cmd)) commands
  @ [ (start +. hold_duration, Sim.Clear_all) ]

let injection_run prng kind ~start ~index targets =
  let commands =
    List.map (fun signal -> Fault.command prng kind (Io.find_exn signal)) targets
  in
  { run_label =
      Printf.sprintf "%s/%s#%d" (Fault.kind_label kind)
        (String.concat "+" (List.map target_label_of_signal targets))
        index;
    plan = plan_of_commands ~start commands }

let value_row prng kind ~start ~values_per_test signal =
  { kind;
    kind_label = Fault.kind_label kind;
    target_label = target_label_of_signal signal;
    targets = [ signal ];
    runs =
      List.init values_per_test (fun i ->
          injection_run prng kind ~start ~index:i [ signal ]) }

let bitflip_row prng ~start ~flips_per_size signal =
  let runs =
    List.concat_map
      (fun n_bits ->
        List.init flips_per_size (fun i ->
            injection_run prng (Fault.Bit_flip n_bits) ~start
              ~index:((n_bits * 100) + i)
              [ signal ]))
      [ 1; 2; 4 ]
  in
  { kind = Fault.Bit_flip 1;
    kind_label = "Bitflips";
    target_label = target_label_of_signal signal;
    targets = [ signal ];
    runs }

let single_rows ~seed ?(start = default_start) ?(values_per_test = 8)
    ?(flips_per_size = 4) () =
  let prng = Prng.create seed in
  let random_rows =
    List.map
      (value_row prng Fault.Random_value ~start ~values_per_test)
      single_target_names
  in
  let ballista_rows =
    List.map (value_row prng Fault.Ballista ~start ~values_per_test)
      single_target_names
  in
  let bitflip_rows =
    List.map (bitflip_row prng ~start ~flips_per_size) single_target_names
  in
  random_rows @ ballista_rows @ bitflip_rows

let range_plus = [ "TargetRange"; "TargetRelVel"; "VehicleAhead" ]

let range_plus_set = range_plus @ [ "ACCSetSpeed" ]

let all_inputs = Io.input_names

let multi_row prng kind ~kind_label ~target_label ~start ~values_per_test
    targets =
  { kind;
    kind_label;
    target_label;
    targets;
    runs =
      List.init values_per_test (fun i ->
          injection_run prng kind ~start ~index:i targets) }

let multi_rows ~seed ?(start = default_start) ?(values_per_test = 20) () =
  let prng = Prng.create (Int64.add seed 1L) in
  let row = multi_row prng ~start ~values_per_test in
  [ row Fault.Ballista ~kind_label:"mBallista" ~target_label:"Range+" range_plus;
    row Fault.Ballista ~kind_label:"mBallista" ~target_label:"All" all_inputs;
    row Fault.Random_value ~kind_label:"mRandom" ~target_label:"Range+" range_plus;
    row Fault.Random_value ~kind_label:"mRandom" ~target_label:"All" all_inputs;
    row Fault.Random_value ~kind_label:"mRandom" ~target_label:"Range+Set"
      range_plus_set;
    row (Fault.Bit_flip 1) ~kind_label:"mBitflip1" ~target_label:"Range+" range_plus;
    row (Fault.Bit_flip 2) ~kind_label:"mBitflip2" ~target_label:"Range+" range_plus;
    row (Fault.Bit_flip 4) ~kind_label:"mBitflip4" ~target_label:"Range+" range_plus ]

let table1 ~seed ?(values_per_test = 8) ?(flips_per_size = 4)
    ?(multi_values_per_test = 20) () =
  single_rows ~seed ~values_per_test ~flips_per_size ()
  @ multi_rows ~seed ~values_per_test:multi_values_per_test ()
