(** Fault models: how one injected value (or corruption) is drawn.

    Mirrors §III-A: random value injection draws floats from
    \[-2000, 2000\] (chosen to straddle the plausible range of every
    message while still hitting in-range values), booleans from
    \{true, false\} and enumerations from \[0, maxint) — the HIL's type
    checking then rejects almost all random enums, exactly as on the
    paper's testbed.  Bit flips XOR randomly chosen bit positions of the
    value's wire image and ride on the live signal.  Ballista injection
    uses the exceptional float set; non-float targets fall back to random
    valid values (the paper's concession to the HIL's checking). *)

type kind =
  | Random_value
  | Ballista
  | Bit_flip of int  (** number of bits flipped: 1, 2 or 4 *)

val kind_label : kind -> string
(** "Random", "Ballista", "Bitflips", as in Table I. *)

val random_float_range : float * float
(** (-2000, 2000). *)

val random_value :
  Monitor_util.Prng.t -> Monitor_signal.Def.t -> Monitor_signal.Value.t

val random_valid_value :
  Monitor_util.Prng.t -> Monitor_signal.Def.t -> Monitor_signal.Value.t
(** Always passes the HIL type check (used for non-float Ballista and
    bit-flip targets). *)

val ballista_value :
  Monitor_util.Prng.t -> Monitor_signal.Def.t -> Monitor_signal.Value.t
(** A draw from {!Ballista.floats} for float signals; a random valid value
    otherwise. *)

val flip_positions : Monitor_util.Prng.t -> n_bits:int ->
  Monitor_signal.Def.t -> int list
(** Distinct bit positions inside the signal's wire image: 64 for floats
    (IEEE-754 double as exchanged between the Simulink models), 1 for
    booleans, 4 for enums. *)

val apply_flips : int list -> Monitor_signal.Value.t -> Monitor_signal.Value.t
(** XOR the positions into the value's image. *)

val command :
  Monitor_util.Prng.t -> kind -> Monitor_signal.Def.t ->
  Monitor_hil.Sim.injection_command
(** One concrete injection for a target signal: a [Set] for value faults,
    a [Set_transform] for bit flips (for enum targets, bit flips degrade
    to random valid values — the HIL would refuse the out-of-range
    results, see §V-C3). *)
