(** The Ballista-style exceptional value set.

    Exactly the float set listed in §III-A of the paper: NaN, infinities,
    signed zeros, small integers, multiples and fractions of pi, e, sqrt 2
    and ln 2, the 2^32 boundary neighbours, and the smallest subnormals. *)

val floats : float array
(** 22 values, in the paper's order. *)

val contains : float -> bool
(** Membership by bit pattern (so NaN is found). *)
