(** Experiment E4: the multi-rate sampling hazard of §V-C1.

    Two measurements over a HIL capture:
    - the number of fast-message updates landing between consecutive slow
      (RequestedTorque) updates — nominally four, but publication jitter
      occasionally delays a slow message so that five arrive;
    - how a naive tick-delta monitor perceives the slowly-published torque
      (constant for three samples out of four) versus the change-aware
      [fresh_delta], shown as disagreement between a naive and a
      fresh-delta version of the same "torque not increasing" check. *)

type t = {
  spacing_histogram : (int * int) list;
      (** (fast updates between slow updates, occurrences) *)
  held_fraction : float;
      (** fraction of monitor ticks at which RequestedTorque was a held
          repeat rather than a fresh sample (about 0.75) *)
  naive_false_ticks : int;
      (** ticks the naive-delta check called False *)
  fresh_false_ticks : int;
      (** ticks the fresh-delta check called False *)
  disagreeing_ticks : int;
}

val run : ?seed:int64 -> unit -> t

val rendered : t -> string
