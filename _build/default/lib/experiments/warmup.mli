(** Experiment E5: discrete value jumps and monitor warm-up (§V-C2).

    TargetRange reads 0 until a target is acquired, then jumps to the true
    range; a closing target (negative relative velocity) therefore shows a
    spurious {e positive} range change at acquisition.  A naive consistency
    rule false-alarms there; wrapping it in [warmup(acquisition, 0.5 s, ...)]
    suppresses exactly those alarms. *)

type t = {
  acquisitions : int;        (** target-acquisition edges in the log *)
  naive_false_ticks : int;
  naive_episodes : int;
  warmup_false_ticks : int;
  warmup_episodes : int;
}

val run : ?seed:int64 -> unit -> t

val rendered : t -> string
