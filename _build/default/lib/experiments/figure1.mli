(** Experiment E1: Figure 1 — the FSRACC module's I/O signal inventory. *)

val rendered : unit -> string
