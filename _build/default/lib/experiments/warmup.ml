module Oracle = Monitor_oracle.Oracle
module Rules = Monitor_oracle.Rules
module Sim = Monitor_hil.Sim
module Scenario = Monitor_hil.Scenario
module Snapshot = Monitor_trace.Snapshot

type t = {
  acquisitions : int;
  naive_false_ticks : int;
  naive_episodes : int;
  warmup_false_ticks : int;
  warmup_episodes : int;
}

let count_acquisitions snapshots =
  let previous = ref false in
  List.fold_left
    (fun acc snap ->
      let ahead =
        match Snapshot.value snap "VehicleAhead" with
        | Some v -> Monitor_signal.Value.as_bool v
        | None -> false
      in
      let edge = ahead && not !previous in
      previous := ahead;
      if edge then acc + 1 else acc)
    0 snapshots

let run ?(seed = 9L) () =
  (* A scenario with several acquisition events: a lead appears, is
     overtaken away, and a new one cuts in. *)
  let scenario = Scenario.overtake () in
  let config = Sim.default_config ~seed scenario in
  let result = Sim.run config in
  let naive = Oracle.check_spec Rules.range_consistency_naive result.Sim.trace in
  let warm = Oracle.check_spec Rules.range_consistency_warmup result.Sim.trace in
  let snapshots = Oracle.snapshots_of_trace result.Sim.trace in
  { acquisitions = count_acquisitions snapshots;
    naive_false_ticks = naive.Oracle.ticks_false;
    naive_episodes = List.length naive.Oracle.episodes;
    warmup_false_ticks = warm.Oracle.ticks_false;
    warmup_episodes = List.length warm.Oracle.episodes }

let rendered t =
  Printf.sprintf
    "DISCRETE VALUE JUMPS / WARM-UP (SS V-C2)\n\
     target acquisitions in log: %d\n\
     naive consistency rule:  %d False ticks in %d episodes (false alarms \
     at acquisition)\n\
     with warmup(0.5 s):      %d False ticks in %d episodes\n"
    t.acquisitions t.naive_false_ticks t.naive_episodes t.warmup_false_ticks
    t.warmup_episodes
