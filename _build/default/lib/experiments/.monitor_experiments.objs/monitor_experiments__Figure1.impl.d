lib/experiments/figure1.ml: Fmt Monitor_fsracc
