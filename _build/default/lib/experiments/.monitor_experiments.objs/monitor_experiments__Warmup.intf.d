lib/experiments/warmup.mli:
