lib/experiments/table1.mli: Monitor_inject Monitor_oracle
