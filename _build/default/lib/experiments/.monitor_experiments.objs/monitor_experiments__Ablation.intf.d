lib/experiments/ablation.mli:
