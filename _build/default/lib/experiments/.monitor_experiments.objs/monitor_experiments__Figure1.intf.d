lib/experiments/figure1.mli:
