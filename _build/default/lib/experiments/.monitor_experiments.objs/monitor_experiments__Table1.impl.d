lib/experiments/table1.ml: Array Float Fun List Monitor_hil Monitor_inject Monitor_oracle Monitor_util Printf String
