lib/experiments/vehicle_logs.ml: Buffer Fun Int64 List Monitor_hil Monitor_oracle Printf
