lib/experiments/warmup.ml: List Monitor_hil Monitor_oracle Monitor_signal Monitor_trace Printf
