lib/experiments/vehicle_logs.mli: Monitor_hil Monitor_oracle
