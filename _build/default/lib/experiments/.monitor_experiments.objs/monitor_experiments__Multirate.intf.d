lib/experiments/multirate.mli:
