lib/experiments/ablation.ml: Array Buffer List Monitor_hil Monitor_mtl Monitor_oracle Monitor_signal Monitor_trace Monitor_util Printf String
