lib/experiments/multirate.ml: Array Buffer Hashtbl List Monitor_hil Monitor_mtl Monitor_oracle Monitor_trace Option Printf String
