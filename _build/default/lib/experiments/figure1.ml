let rendered () =
  "FIGURE 1: FSRACC MODULE IO SIGNALS\n"
  ^ Fmt.str "%a" Monitor_fsracc.Io.figure1 ()
