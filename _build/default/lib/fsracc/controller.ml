type inputs = {
  velocity : float;
  accel_ped_pos : float;
  brake_ped_pres : float;
  acc_set_speed : float;
  throt_pos : float;
  vehicle_ahead : bool;
  target_range : float;
  target_rel_vel : float;
  sel_headway : int;
}

type outputs = {
  acc_enabled : bool;
  brake_requested : bool;
  torque_requested : bool;
  requested_torque : float;
  requested_decel : float;
  service_acc : bool;
}

type mode = Standby | Engaged | Fault

type gains = {
  kp_speed : float;
  ki_speed : float;
  k_gap : float;
  k_closing : float;
  min_gap : float;
  accel_limit : float;
  decel_limit : float;
  blip_threshold : float;
}

let default_gains =
  { kp_speed = 0.4;
    ki_speed = 0.01;
    k_gap = 0.08;
    k_closing = 0.6;
    min_gap = 5.0;
    accel_limit = 2.0;
    decel_limit = 4.0;
    blip_threshold = 1.5 }

let headway_time = function
  | 0 -> 1.0
  | 1 -> 1.5
  | 2 -> 2.0
  | _ -> 2.0

type t = {
  gains : gains;
  vehicle_mass : float;
  wheel_radius : float;
  mutable mode : mode;
  mutable integrator : float;
  mutable prev_decel : float;  (* last cycle's commanded decel, m/s^2 <= 0 *)
  mutable release_overshoot : float;
      (* decaying positive RequestedDecel after an abrupt brake release *)
}

let create ?(gains = default_gains) ?(vehicle_mass = 1600.0)
    ?(wheel_radius = 0.32) () =
  { gains; vehicle_mass; wheel_radius; mode = Standby; integrator = 0.0;
    prev_decel = 0.0; release_overshoot = 0.0 }

let mode t = t.mode

let idle_outputs =
  { acc_enabled = false;
    brake_requested = false;
    torque_requested = false;
    requested_torque = 0.0;
    requested_decel = 0.0;
    service_acc = false }

let reset t =
  t.mode <- Standby;
  t.integrator <- 0.0;
  t.prev_decel <- 0.0;
  t.release_overshoot <- 0.0

(* The control law.  NOTE the deliberate absence of any input validation:
   velocity, range, relative velocity and set speed flow into the
   arithmetic unchecked.  This mirrors the prototype feature of the paper,
   whose missing bounds/consistency checks were its central robustness
   finding. *)
let commanded_accel t ~dt (i : inputs) =
  let g = t.gains in
  (* Speed control toward the set speed. *)
  let speed_error = i.acc_set_speed -. i.velocity in
  t.integrator <- t.integrator +. (g.ki_speed *. speed_error *. dt);
  (* Anti-windup: the integrator contribution is bounded... unless the
     error itself is non-finite, which the feature never considers. *)
  if Float.is_finite t.integrator then
    t.integrator <- Float.max (-0.25) (Float.min 0.25 t.integrator);
  let a_speed = (g.kp_speed *. speed_error) +. t.integrator in
  (* Gap control when the radar claims a target (the flag is trusted
     blindly; range/relative velocity are never cross-checked against it,
     nor against each other — the missing consistency check the paper
     identifies). *)
  let a =
    if i.vehicle_ahead then begin
      let desired_gap = (headway_time i.sel_headway *. i.velocity) +. g.min_gap in
      let a_follow =
        (g.k_gap *. (i.target_range -. desired_gap))
        +. (g.k_closing *. i.target_rel_vel)
      in
      (* Prototype-grade arbitration: the more conservative of the two
         controllers — except that a grossly excessive speed-control
         demand (beyond anything sane driving produces) partially leaks
         through.  Harmless for real set speeds, and exactly the kind of
         placeholder shortcut that lets an absurd ACCSetSpeed push the
         vehicle toward its target. *)
      let excess = 0.12 *. Float.max 0.0 (a_speed -. 10.0) in
      Float.min a_speed a_follow +. excess
    end
    else a_speed
  in
  Float.max (-.g.decel_limit) (Float.min g.accel_limit a)

(* Feed-forward conversion of a commanded acceleration into a wheel torque
   request (drag and rolling resistance at the current speed). *)
let torque_of_accel t (i : inputs) a =
  let drag = 0.38 *. i.velocity *. i.velocity in
  let rolling = 0.011 *. t.vehicle_mass *. 9.80665 in
  ((t.vehicle_mass *. a) +. drag +. rolling) *. t.wheel_radius

let engaged_outputs t ~dt (i : inputs) =
  let a = commanded_accel t ~dt i in
  let torque = torque_of_accel t i a in
  (* The engine can deliver down to mild engine braking; deeper
     deceleration goes to the service brakes. *)
  let engine_floor = -400.0 in
  if torque >= engine_floor || not (torque < engine_floor) then begin
    (* NaN torque falls in here too: the comparison chain was written for
       the nominal case. *)
    let release_step = -.t.prev_decel in
    if t.prev_decel < 0.0 && release_step > t.gains.blip_threshold then
      (* Abrupt brake release: the release rate limiter kicks past zero
         and decays back over a few cycles (the paper's Rule #5
         transient, "a one cycle blip of positive RequestedDecel" at the
         40 ms message period). *)
      t.release_overshoot <- Float.min 0.3 (0.1 *. release_step);
    t.prev_decel <- 0.0;
    if t.release_overshoot > 0.02 then begin
      let overshoot = t.release_overshoot in
      t.release_overshoot <- overshoot *. 0.55;
      { acc_enabled = true;
        brake_requested = true;
        torque_requested = false;
        requested_torque = Float.max engine_floor torque;
        requested_decel = overshoot;
        service_acc = false }
    end
    else begin
      t.release_overshoot <- 0.0;
      { acc_enabled = true;
        brake_requested = false;
        torque_requested = true;
        requested_torque = torque;
        requested_decel = 0.0;
        service_acc = false }
    end
  end
  else begin
    t.prev_decel <- (if Float.is_finite a then Float.min 0.0 a else t.prev_decel);
    t.release_overshoot <- 0.0;
    { acc_enabled = true;
      brake_requested = true;
      torque_requested = false;
      (* The engine is simultaneously commanded to its floor while the
         service brakes make up the rest — so the bus shows a negative
         engine torque during braking. *)
      requested_torque = engine_floor;
      requested_decel = a;
      service_acc = false }
  end

let step t ~dt (i : inputs) =
  (* The feature's one self-check: an undecodable headway selection trips
     the service indicator.  The same branch clears ACCEnabled, which is
     why Rule #0 holds by construction. *)
  if i.sel_headway < 0 || i.sel_headway > 2 then begin
    t.mode <- Fault;
    t.integrator <- 0.0;
    t.prev_decel <- 0.0;
    t.release_overshoot <- 0.0;
    { idle_outputs with service_acc = true }
  end
  else begin
    let engage = i.acc_set_speed > 5.0 && not (i.brake_ped_pres >= 3.0) in
    (* NaN brake pressure slips through the comparison above — written for
       the nominal case, again. *)
    match t.mode, engage with
    | (Standby | Fault), false ->
      t.mode <- Standby;
      idle_outputs
    | (Standby | Fault), true ->
      t.mode <- Engaged;
      t.integrator <- 0.0;
      engaged_outputs t ~dt i
    | Engaged, false ->
      t.mode <- Standby;
      t.integrator <- 0.0;
      t.prev_decel <- 0.0;
      t.release_overshoot <- 0.0;
      idle_outputs
    | Engaged, true -> engaged_outputs t ~dt i
  end
