lib/fsracc/controller.ml: Float
