lib/fsracc/controller.mli:
