lib/fsracc/io.ml: Fmt List Monitor_can Monitor_signal String
