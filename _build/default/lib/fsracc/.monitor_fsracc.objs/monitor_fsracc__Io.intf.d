lib/fsracc/io.mli: Format Monitor_can Monitor_signal
