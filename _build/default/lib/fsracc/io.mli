(** The FSRACC module's I/O signals — Figure 1 of the paper — and their
    layout on the vehicle's CAN network.

    Two broadcast periods exist, the slower one four times the faster
    (§V-C1): plant and radar state go out every 10 ms, while driver
    settings and the ACC's own command outputs go out every 40 ms —
    [RequestedTorque] being slow is precisely what made naive
    tick-to-tick deltas misleading in the paper. *)

type direction = Input | Output

val signals : (direction * Monitor_signal.Def.t) list
(** The fifteen Figure 1 signals, in the paper's order. *)

val input_names : string list

val output_names : string list

val find : string -> Monitor_signal.Def.t option

val find_exn : string -> Monitor_signal.Def.t
(** @raise Not_found on unknown names. *)

val float_input_names : string list
(** The eight injection targets of the paper's campaigns are [input_names];
    of these, the float-typed ones are the Ballista targets. *)

(** {2 Network layout} *)

val dbc : Monitor_can.Dbc.t
(** Messages:
    - [VehicleState] (0x100, 10 ms): Velocity, ThrotPos
    - [DriverInput]  (0x110, 10 ms): AccelPedPos, BrakePedPres
    - [RadarTrack]   (0x130, 10 ms): TargetRange, TargetRelVel
    - [RadarStatus]  (0x138, 10 ms): VehicleAhead
    - [DriverSettings] (0x120, 40 ms): ACCSetSpeed, SelHeadway
    - [AccCommand]   (0x150, 40 ms): RequestedTorque, RequestedDecel
    - [AccStatus]    (0x158, 40 ms): ACCEnabled, BrakeRequested,
      TorqueRequested, ServiceACC

    Floats ride as raw IEEE-754 single precision, so NaN and infinities
    survive the wire — matching the Simulink-generated ECUs of the
    prototype platform. *)

val fast_period_ms : int
val slow_period_ms : int

val figure1 : Format.formatter -> unit -> unit
(** Render the Figure 1 table. *)
