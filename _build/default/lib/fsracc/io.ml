module Def = Monitor_signal.Def
module Can = Monitor_can

type direction = Input | Output

let fast_period_ms = 10

let slow_period_ms = 40

let fdef ?(period = fast_period_ms) name lo hi unit_name description =
  Def.make ~name ~kind:(Def.Float_kind { min = lo; max = hi }) ~unit_name
    ~description ~period_ms:period ()

let bdef ?(period = fast_period_ms) name description =
  Def.make ~name ~kind:Def.Bool_kind ~description ~period_ms:period ()

let signals =
  [ (Input, fdef "Velocity" 0.0 80.0 "m/s" "forward speed of the vehicle");
    (Input, fdef "AccelPedPos" 0.0 100.0 "%" "accelerator pedal position");
    (Input, fdef "BrakePedPres" 0.0 200.0 "bar" "brake pedal pressure");
    ( Input,
      fdef ~period:slow_period_ms "ACCSetSpeed" 0.0 60.0 "m/s"
        "commanded cruising speed" );
    (Input, fdef "ThrotPos" 0.0 100.0 "%" "throttle opening");
    (Input, bdef "VehicleAhead" "a vehicle is detected ahead in the lane");
    (Input, fdef "TargetRange" 0.0 200.0 "m" "distance to the vehicle ahead");
    ( Input,
      fdef "TargetRelVel" (-60.0) 60.0 "m/s"
        "relative velocity to the vehicle ahead" );
    ( Input,
      Def.make ~name:"SelHeadway" ~kind:(Def.Enum_kind { n_values = 3 })
        ~description:"selected headway distance" ~period_ms:slow_period_ms () );
    ( Output,
      bdef ~period:slow_period_ms "ACCEnabled"
        "the ACC believes it controls the vehicle" );
    ( Output,
      bdef ~period:slow_period_ms "BrakeRequested"
        "the ACC is requesting a deceleration" );
    ( Output,
      bdef ~period:slow_period_ms "TorqueRequested"
        "the ACC is requesting engine torque" );
    ( Output,
      fdef ~period:slow_period_ms "RequestedTorque" (-500.0) 3000.0 "N*m"
        "additional torque the engine controller should provide" );
    ( Output,
      fdef ~period:slow_period_ms "RequestedDecel" (-9.0) 1.0 "m/s^2"
        "requested deceleration (negative) for the brake controller" );
    ( Output,
      bdef ~period:slow_period_ms "ServiceACC"
        "feature fault indicator for the driver" ) ]

let input_names =
  List.filter_map
    (fun (dir, d) -> if dir = Input then Some d.Def.name else None)
    signals

let output_names =
  List.filter_map
    (fun (dir, d) -> if dir = Output then Some d.Def.name else None)
    signals

let find name =
  List.find_map
    (fun ((_ : direction), d) ->
      if String.equal d.Def.name name then Some d else None)
    signals

let find_exn name =
  match find name with
  | Some d -> d
  | None -> raise Not_found

let float_input_names =
  List.filter_map
    (fun (dir, d) ->
      match dir, d.Def.kind with
      | Input, Def.Float_kind _ -> Some d.Def.name
      | (Input | Output), _ -> None)
    signals

(* Network layout --------------------------------------------------------- *)

let f32 signal_name start_bit =
  Can.Coding.make ~signal_name ~start_bit ~length:32
    ~byte_order:Can.Bitfield.Little_endian ~repr:Can.Coding.Raw_float32

let bit signal_name start_bit =
  Can.Coding.make ~signal_name ~start_bit ~length:1
    ~byte_order:Can.Bitfield.Little_endian ~repr:Can.Coding.Raw_bool

let enum4 signal_name start_bit =
  Can.Coding.make ~signal_name ~start_bit ~length:4
    ~byte_order:Can.Bitfield.Little_endian ~repr:Can.Coding.Raw_enum

let dbc =
  Can.Dbc.create
    [ Can.Message.make ~name:"VehicleState" ~id:0x100 ~dlc:8
        ~period_ms:fast_period_ms
        ~codings:[ f32 "Velocity" 0; f32 "ThrotPos" 32 ]
        ();
      Can.Message.make ~name:"DriverInput" ~id:0x110 ~dlc:8
        ~period_ms:fast_period_ms
        ~codings:[ f32 "AccelPedPos" 0; f32 "BrakePedPres" 32 ]
        ();
      Can.Message.make ~name:"DriverSettings" ~id:0x120 ~dlc:5
        ~period_ms:slow_period_ms
        ~codings:[ f32 "ACCSetSpeed" 0; enum4 "SelHeadway" 32 ]
        ();
      Can.Message.make ~name:"RadarTrack" ~id:0x130 ~dlc:8
        ~period_ms:fast_period_ms
        ~codings:[ f32 "TargetRange" 0; f32 "TargetRelVel" 32 ]
        ();
      Can.Message.make ~name:"RadarStatus" ~id:0x138 ~dlc:1
        ~period_ms:fast_period_ms
        ~codings:[ bit "VehicleAhead" 0 ]
        ();
      Can.Message.make ~name:"AccCommand" ~id:0x150 ~dlc:8
        ~period_ms:slow_period_ms
        ~codings:[ f32 "RequestedTorque" 0; f32 "RequestedDecel" 32 ]
        ();
      Can.Message.make ~name:"AccStatus" ~id:0x158 ~dlc:1
        ~period_ms:slow_period_ms
        ~codings:
          [ bit "ACCEnabled" 0; bit "BrakeRequested" 1;
            bit "TorqueRequested" 2; bit "ServiceACC" 3 ]
        () ]

let figure1 ppf () =
  Fmt.pf ppf "@[<v>%-6s %-16s %-8s %s@ " "I/O" "Name" "Type" "Period";
  List.iter
    (fun (dir, d) ->
      Fmt.pf ppf "%-6s %-16s %-8s %dms@ "
        (match dir with Input -> "Input" | Output -> "Output")
        d.Def.name (Def.type_string d) d.Def.period_ms)
    signals;
  Fmt.pf ppf "@]"
