(** The Full Speed Range Adaptive Cruise Control feature under test.

    A faithful stand-in for the paper's third-party prototype module: a
    plausible ACC control law with — deliberately — {e no input
    validation}.  Velocity, TargetRange, TargetRelVel and ACCSetSpeed feed
    the control arithmetic unchecked, so exceptional or absurd inputs
    propagate straight into torque and deceleration requests (the paper's
    core robustness finding).  It also reproduces two behaviours the paper
    reports: a single-cycle positive [RequestedDecel] blip when an abrupt
    input step snaps the controller out of hard braking (the Rule #5
    transient), and a [ServiceACC] flag that, by construction, always
    forces [ACCEnabled] off in the same cycle (why Rule #0 never fires). *)

type inputs = {
  velocity : float;
  accel_ped_pos : float;
  brake_ped_pres : float;
  acc_set_speed : float;
  throt_pos : float;
  vehicle_ahead : bool;
  target_range : float;
  target_rel_vel : float;
  sel_headway : int;
}

type outputs = {
  acc_enabled : bool;
  brake_requested : bool;
  torque_requested : bool;
  requested_torque : float;  (** N*m at the wheel *)
  requested_decel : float;   (** m/s^2, negative when decelerating *)
  service_acc : bool;
}

type mode = Standby | Engaged | Fault

type gains = {
  kp_speed : float;      (** speed-error accel gain, 1/s *)
  ki_speed : float;      (** integral gain *)
  k_gap : float;         (** gap-error accel gain, 1/s^2 *)
  k_closing : float;     (** relative-velocity gain, 1/s *)
  min_gap : float;       (** m, standstill gap *)
  accel_limit : float;   (** m/s^2, commanded acceleration ceiling *)
  decel_limit : float;   (** m/s^2 magnitude, commanded floor *)
  blip_threshold : float;
      (** m/s^2: a one-cycle decel step larger than this triggers the
          release-overshoot blip *)
}

val default_gains : gains

val headway_time : int -> float
(** Seconds of headway per [SelHeadway] selection: 1.0 / 1.5 / 2.0.
    Out-of-range selections fall back to 2.0 — but also raise the
    feature's internal fault (see {!step}). *)

type t

val create : ?gains:gains -> ?vehicle_mass:float -> ?wheel_radius:float ->
  unit -> t

val mode : t -> mode

val step : t -> dt:float -> inputs -> outputs
(** One 10 ms control cycle.  Engagement logic: engaged while
    [acc_set_speed > 5.0] and the brake pedal is not pressed
    ([brake_ped_pres < 3.0]); an out-of-range [sel_headway] (possible only
    off the HIL, which type-checks enums) trips [Fault]: [service_acc]
    true and every control output inert. *)

val reset : t -> unit

val idle_outputs : outputs
(** The all-off output vector (feature disengaged). *)
