lib/signal/value.ml: Bool Float Fmt Int Int64 Monitor_util
