lib/signal/def.ml: Float Fmt Int Value
