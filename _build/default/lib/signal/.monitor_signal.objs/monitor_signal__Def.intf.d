lib/signal/def.mli: Format Value
