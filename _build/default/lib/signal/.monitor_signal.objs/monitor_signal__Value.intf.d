lib/signal/value.mli: Format
