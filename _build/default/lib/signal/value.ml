type t = Float of float | Bool of bool | Enum of int

let equal a b =
  match a, b with
  | Float x, Float y ->
    (* Bit-pattern equality so that NaN = NaN: hold-detection in the
       multi-rate layer must recognise a repeated NaN as "the same sample". *)
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Bool x, Bool y -> Bool.equal x y
  | Enum x, Enum y -> Int.equal x y
  | (Float _ | Bool _ | Enum _), _ -> false

let compare a b =
  let rank = function Float _ -> 0 | Bool _ -> 1 | Enum _ -> 2 in
  match a, b with
  | Float x, Float y ->
    if Float.is_nan x && Float.is_nan y then 0
    else if Float.is_nan x then 1
    else if Float.is_nan y then -1
    else Float.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | Enum x, Enum y -> Int.compare x y
  | _, _ -> Int.compare (rank a) (rank b)

let pp ppf = function
  | Float x -> Fmt.pf ppf "%h" x
  | Bool b -> Fmt.pf ppf "%b" b
  | Enum i -> Fmt.pf ppf "#%d" i

let to_string v = Fmt.str "%a" pp v

let as_float = function
  | Float x -> x
  | Bool true -> 1.0
  | Bool false -> 0.0
  | Enum i -> float_of_int i

let as_bool = function
  | Bool b -> b
  | Float x -> (not (Float.is_nan x)) && x <> 0.0
  | Enum i -> i <> 0

let is_exceptional = function
  | Float x -> Monitor_util.Float_bits.is_exceptional x
  | Bool _ | Enum _ -> false

let type_name = function
  | Float _ -> "float"
  | Bool _ -> "bool"
  | Enum _ -> "enum"
