(** Values carried by vehicle-network signals.

    The HIL platform in the paper exposed three data types to the injection
    interface: floats (including exceptional values such as NaN and
    infinities), booleans, and enumerations (non-negative integers).  This
    module is the common currency between the plant simulation, the CAN
    layer, the fault injector and the monitor. *)

type t =
  | Float of float  (** physical quantity; may be NaN/±inf under faults *)
  | Bool of bool
  | Enum of int     (** non-negative enumeration index *)

val equal : t -> t -> bool
(** Structural equality.  [Float nan] equals [Float nan] (bit-pattern
    semantics): the monitor must treat a held NaN sample as "unchanged". *)

val compare : t -> t -> int
(** Total order consistent with {!equal}; NaN sorts above +inf. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val as_float : t -> float
(** Numeric view: [Float x -> x], [Bool b -> 0/1], [Enum i -> float i].
    This mirrors the paper's monitor, whose expression language compares
    signal values arithmetically regardless of declared type. *)

val as_bool : t -> bool
(** Truthiness: [Bool b -> b], [Float x -> x <> 0 && not (nan x)],
    [Enum i -> i <> 0]. *)

val is_exceptional : t -> bool
(** NaN or infinite float. *)

val type_name : t -> string
(** ["float"], ["bool"] or ["enum"]. *)
