(** Forward radar model.

    Produces the three target signals of Figure 1.  When no target is
    tracked the range and relative velocity read exactly 0.0 and jump to
    the true values on acquisition — the discrete value jump the paper
    calls out in §V-C2. *)

type reading = {
  vehicle_ahead : bool;
  target_range : float;   (** m, 0.0 when no target *)
  target_rel_vel : float; (** m/s, lead minus ego; 0.0 when no target *)
}

type t

val create :
  ?max_range:float -> ?noise_sigma:float -> ?dropout_per_s:float ->
  ?seed:int64 -> unit -> t
(** Defaults: 150 m range, no noise, no dropouts.  [noise_sigma] adds
    Gaussian noise to range and relative velocity (real-vehicle mode);
    [dropout_per_s] is the probability per second of losing the track for
    one sample. *)

val sense :
  t -> dt:float -> lead_present:bool -> lead_position:float ->
  lead_speed:float -> ego_position:float -> ego_speed:float ->
  ego_length:float -> reading
