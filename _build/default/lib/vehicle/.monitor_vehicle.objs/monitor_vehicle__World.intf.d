lib/vehicle/world.mli: Lead Params Radar Road
