lib/vehicle/actuator.ml: Float
