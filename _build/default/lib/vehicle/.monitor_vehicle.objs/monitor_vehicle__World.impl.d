lib/vehicle/world.ml: Actuator Dynamics Lead Params Radar Road
