lib/vehicle/radar.ml: Float Monitor_util
