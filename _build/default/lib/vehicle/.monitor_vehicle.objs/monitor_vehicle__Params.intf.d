lib/vehicle/params.mli:
