lib/vehicle/dynamics.ml: Float Params
