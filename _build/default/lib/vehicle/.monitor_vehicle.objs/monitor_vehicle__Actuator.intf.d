lib/vehicle/actuator.mli:
