lib/vehicle/road.mli:
