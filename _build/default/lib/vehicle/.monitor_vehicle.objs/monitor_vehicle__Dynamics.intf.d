lib/vehicle/dynamics.mli: Params
