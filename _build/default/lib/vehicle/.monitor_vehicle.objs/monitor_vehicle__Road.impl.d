lib/vehicle/road.ml: List
