lib/vehicle/lead.ml: Float
