lib/vehicle/params.ml:
