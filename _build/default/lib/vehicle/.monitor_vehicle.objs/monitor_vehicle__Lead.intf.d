lib/vehicle/lead.mli:
