lib/vehicle/radar.mli:
