type t = {
  p : Params.t;
  mutable position : float;
  mutable speed : float;
}

let create ?(params = Params.default) ?(position = 0.0) ?(speed = 0.0) () =
  { p = params; position; speed = Float.max 0.0 speed }

let params t = t.p

let position t = t.position

let speed t = t.speed

let step t ~dt ~wheel_torque ~brake_decel ~grade =
  let p = t.p in
  let v = t.speed in
  let drive_force = wheel_torque /. p.Params.wheel_radius in
  let drag = p.Params.drag_area *. v *. v in
  let rolling =
    if v > 0.01 then p.Params.rolling_coeff *. p.Params.mass *. Params.gravity *. cos grade
    else 0.0
  in
  let slope = p.Params.mass *. Params.gravity *. sin grade in
  let brake = Float.max 0.0 brake_decel *. p.Params.mass in
  let braking = if v > 0.01 then brake else Float.min brake drive_force in
  let accel = (drive_force -. drag -. rolling -. slope -. braking) /. p.Params.mass in
  t.speed <- Float.max 0.0 (v +. (accel *. dt));
  t.position <- t.position +. (t.speed *. dt)

let throttle_position t ~wheel_torque =
  let frac = wheel_torque /. t.p.Params.max_wheel_torque in
  100.0 *. Float.max 0.0 (Float.min 1.0 frac)
