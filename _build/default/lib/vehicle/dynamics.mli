(** Longitudinal point-mass dynamics of one vehicle. *)

type t

val create : ?params:Params.t -> ?position:float -> ?speed:float -> unit -> t

val params : t -> Params.t

val position : t -> float
(** Metres along the road. *)

val speed : t -> float
(** m/s, never negative (no reverse). *)

val step : t -> dt:float -> wheel_torque:float -> brake_decel:float ->
  grade:float -> unit
(** Advance one step.  [wheel_torque] is the delivered driveline torque
    (N*m, may be negative for engine braking), [brake_decel] the delivered
    service-brake deceleration magnitude (m/s^2, >= 0), [grade] the road
    grade in radians.  Speed is clamped at zero — brakes and gravity cannot
    push the car backwards in this model. *)

val throttle_position : t -> wheel_torque:float -> float
(** Percentage (0–100) the throttle would hold to deliver [wheel_torque] —
    the plant-side signal behind the [ThrotPos] message. *)
