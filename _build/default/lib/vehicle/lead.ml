type action =
  | Set_speed of float
  | Appear of { gap : float; speed : float }
  | Disappear

type t = {
  accel_limit : float;
  mutable events : (float * action) list;
  mutable present : bool;
  mutable position : float;
  mutable speed : float;
  mutable target_speed : float;
}

let create ?(accel_limit = 3.0) ?(initial = None) ~events () =
  let rec check = function
    | [] | [ _ ] -> ()
    | (a, _) :: ((b, _) :: _ as rest) ->
      if a > b then invalid_arg "Lead.create: events out of time order";
      check rest
  in
  check events;
  let present, position, speed =
    match initial with
    | Some (gap, speed) -> (true, gap, speed)
    | None -> (false, 0.0, 0.0)
  in
  { accel_limit; events; present; position; speed; target_speed = speed }

let present t = t.present

let position t = t.position

let speed t = t.speed

let apply t ego_position = function
  | Set_speed v -> t.target_speed <- Float.max 0.0 v
  | Appear { gap; speed } ->
    t.present <- true;
    t.position <- ego_position +. gap;
    t.speed <- Float.max 0.0 speed;
    t.target_speed <- t.speed
  | Disappear -> t.present <- false

let step t ~dt ~now ~ego_position =
  let rec fire () =
    match t.events with
    | (time, action) :: rest when time <= now ->
      apply t ego_position action;
      t.events <- rest;
      fire ()
    | _ :: _ | [] -> ()
  in
  fire ();
  if t.present then begin
    let dv = t.target_speed -. t.speed in
    let max_dv = t.accel_limit *. dt in
    let dv = Float.max (-.max_dv) (Float.min max_dv dv) in
    t.speed <- Float.max 0.0 (t.speed +. dv);
    t.position <- t.position +. (t.speed *. dt)
  end
