(** Scripted lead vehicle (the "target").

    The lead is what the radar tracks.  Its script drives the scenarios the
    paper's rules trip over: steady following (Table I campaigns), cut-ins
    and overtaking (Rule #2's "reasonable violations"), stop-and-go
    (Rule #1 headway stress). *)

type action =
  | Set_speed of float
      (** new cruise target (m/s); approached with bounded acceleration *)
  | Appear of { gap : float; speed : float }
      (** (re)enter the lane [gap] metres ahead of the ego vehicle — a
          cut-in, which makes TargetRange jump discontinuously (§V-C2) *)
  | Disappear
      (** leave the lane (lane change, or ego overtakes) *)

type t

val create : ?accel_limit:float -> ?initial:(float * float) option ->
  events:(float * action) list -> unit -> t
(** [initial = Some (gap, speed)] starts with a lead present that far ahead
    of an ego at position 0; [None] starts with an empty road.  Events fire
    at their timestamps (must be non-decreasing;
    @raise Invalid_argument otherwise).  Default accel limit 3 m/s^2. *)

val present : t -> bool

val position : t -> float

val speed : t -> float

val step : t -> dt:float -> now:float -> ego_position:float -> unit
(** Advance: fire due events ([Appear] gaps are measured from
    [ego_position]), then integrate the lead's motion. *)
