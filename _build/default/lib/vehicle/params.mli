(** Longitudinal vehicle parameters.

    The plant replaces CARSIM: rules #1–#6 of the paper depend only on
    longitudinal quantities, so a calibrated point-mass model with actuator
    lag reproduces the dynamics the monitor observes. *)

type t = {
  mass : float;              (** kg, including payload *)
  drag_area : float;         (** 0.5 * rho * Cd * A, N/(m/s)^2 *)
  rolling_coeff : float;     (** dimensionless Crr *)
  wheel_radius : float;      (** m *)
  max_wheel_torque : float;  (** N*m, driveline limit *)
  min_wheel_torque : float;  (** N*m, engine braking (negative) *)
  max_brake_decel : float;   (** m/s^2, positive magnitude *)
  engine_lag : float;        (** s, first-order torque response *)
  brake_lag : float;         (** s, first-order decel response *)
  length : float;            (** m, bumper-to-bumper *)
}

val default : t
(** A mid-size sedan: 1600 kg, 0.38 N/(m/s)^2 drag area, 0.011 Crr, 0.32 m
    wheels, 1900 / -400 N*m torque envelope, 9 m/s^2 brakes, 200/100 ms
    actuator lags, 4.7 m long. *)

val gravity : float
