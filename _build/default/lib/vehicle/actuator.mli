(** First-order actuators between the feature's requests and the plant.

    The engine and brake controllers in the vehicle accept the FSRACC's
    torque/deceleration requests and realise them with lag and saturation.
    They also embody the survival behaviour of real ECUs facing garbage: a
    non-finite request is ignored (last valid command held), an out-of-range
    one saturates.  The *plant* therefore stays numerically sane while the
    *bus* still carries the raw, possibly absurd request — which is exactly
    what the monitor sees and flags. *)

type t

val create : lag:float -> min_output:float -> max_output:float -> t
(** @raise Invalid_argument unless [lag > 0 && min_output <= max_output]. *)

val output : t -> float
(** Currently delivered value (0 initially). *)

val step : t -> dt:float -> request:float -> float
(** Move the output toward the (sanitised) request with first-order
    dynamics [d(out)/dt = (request - out) / lag]; returns the new output.
    NaN and infinite requests hold the previous target. *)

val reset : t -> unit
