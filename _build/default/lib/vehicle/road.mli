(** Road grade profiles.

    A profile is a piecewise-constant grade over distance.  Hills are what
    make the paper's Rules #3/#4 fire "unreasonably" on real-vehicle logs:
    climbing, torque must rise just to hold speed. *)

type t

val flat : t

val of_segments : (float * float) list -> t
(** [(start_position_m, grade_rad); ...].  Grade 0 before the first
    segment.  Segments must be in increasing position order.
    @raise Invalid_argument otherwise. *)

val hill : ?start:float -> ?length:float -> ?grade:float -> unit -> t
(** A single climb: flat, then [grade] radians for [length] metres starting
    at [start], then flat again.  Defaults: start 500 m, length 400 m,
    grade 0.06 rad (~6%%). *)

val rolling : ?start:float -> ?wavelength:float -> ?amplitude:float -> unit -> t
(** Alternating up/down segments — a crest-and-valley road.  Defaults:
    start 300 m, wavelength 500 m (each half up or down), amplitude
    0.05 rad. *)

val grade_at : t -> float -> float
(** Grade in radians at a position. *)
