type outputs = {
  time : float;
  velocity : float;
  throttle_pos : float;
  ego_position : float;
  grade : float;
  radar : Radar.reading;
  delivered_torque : float;
  delivered_brake_decel : float;
  true_gap : float option;
}

type t = {
  ego : Dynamics.t;
  engine : Actuator.t;
  brake : Actuator.t;
  lead : Lead.t;
  road : Road.t;
  radar : Radar.t;
  mutable last : outputs;
}

let observe t ~time ~delivered_torque ~delivered_brake_decel ~radar_reading =
  { time;
    velocity = Dynamics.speed t.ego;
    throttle_pos = Dynamics.throttle_position t.ego ~wheel_torque:delivered_torque;
    ego_position = Dynamics.position t.ego;
    grade = Road.grade_at t.road (Dynamics.position t.ego);
    radar = radar_reading;
    delivered_torque;
    delivered_brake_decel;
    true_gap =
      (if Lead.present t.lead then
         Some
           (Lead.position t.lead -. Dynamics.position t.ego
          -. (Dynamics.params t.ego).Params.length)
       else None) }

let create ?(params = Params.default) ?(road = Road.flat)
    ?(radar = Radar.create ()) ?(ego_speed = 0.0) ~lead () =
  let ego = Dynamics.create ~params ~speed:ego_speed () in
  let engine =
    Actuator.create ~lag:params.Params.engine_lag
      ~min_output:params.Params.min_wheel_torque
      ~max_output:params.Params.max_wheel_torque
  in
  let brake =
    Actuator.create ~lag:params.Params.brake_lag ~min_output:0.0
      ~max_output:params.Params.max_brake_decel
  in
  let initial =
    { time = 0.0; velocity = Dynamics.speed ego; throttle_pos = 0.0;
      ego_position = Dynamics.position ego; grade = 0.0;
      radar = { Radar.vehicle_ahead = false; target_range = 0.0; target_rel_vel = 0.0 };
      delivered_torque = 0.0; delivered_brake_decel = 0.0; true_gap = None }
  in
  { ego; engine; brake; lead; road; radar; last = initial }

let step t ~dt ~now ~engine_request ~brake_decel_request =
  let torque = Actuator.step t.engine ~dt ~request:engine_request in
  let decel = Actuator.step t.brake ~dt ~request:brake_decel_request in
  let grade = Road.grade_at t.road (Dynamics.position t.ego) in
  Dynamics.step t.ego ~dt ~wheel_torque:torque ~brake_decel:decel ~grade;
  Lead.step t.lead ~dt ~now ~ego_position:(Dynamics.position t.ego);
  let reading =
    Radar.sense t.radar ~dt ~lead_present:(Lead.present t.lead)
      ~lead_position:(Lead.position t.lead) ~lead_speed:(Lead.speed t.lead)
      ~ego_position:(Dynamics.position t.ego) ~ego_speed:(Dynamics.speed t.ego)
      ~ego_length:(Dynamics.params t.ego).Params.length
  in
  let out =
    observe t ~time:now ~delivered_torque:torque ~delivered_brake_decel:decel
      ~radar_reading:reading
  in
  t.last <- out;
  out

let last t = t.last
