type t = {
  mass : float;
  drag_area : float;
  rolling_coeff : float;
  wheel_radius : float;
  max_wheel_torque : float;
  min_wheel_torque : float;
  max_brake_decel : float;
  engine_lag : float;
  brake_lag : float;
  length : float;
}

let default =
  { mass = 1600.0;
    drag_area = 0.38;
    rolling_coeff = 0.011;
    wheel_radius = 0.32;
    max_wheel_torque = 1900.0;
    min_wheel_torque = -400.0;
    max_brake_decel = 9.0;
    engine_lag = 0.2;
    brake_lag = 0.1;
    length = 4.7 }

let gravity = 9.80665
