(** The simulated world: ego vehicle + actuators + lead vehicle + road +
    radar, advanced in lock-step.  This is the plant the HIL executive
    wraps; the FSRACC controller and the fault injector live outside it. *)

type outputs = {
  time : float;
  velocity : float;        (** ego speed, m/s *)
  throttle_pos : float;    (** %% of throttle actually applied *)
  ego_position : float;
  grade : float;           (** radians at the ego's position *)
  radar : Radar.reading;
  delivered_torque : float;
  delivered_brake_decel : float;
  true_gap : float option; (** actual bumper gap to the lead, if present *)
}

type t

val create :
  ?params:Params.t -> ?road:Road.t -> ?radar:Radar.t -> ?ego_speed:float ->
  lead:Lead.t -> unit -> t

val step : t -> dt:float -> now:float -> engine_request:float ->
  brake_decel_request:float -> outputs
(** [engine_request] is the wheel-torque request reaching the engine
    controller (N*m); [brake_decel_request] the deceleration magnitude
    reaching the brake controller (m/s^2, >= 0).  Both pass through
    first-order actuators that ignore non-finite requests. *)

val last : t -> outputs
(** Outputs of the most recent step (or the initial state). *)
