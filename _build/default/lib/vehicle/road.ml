type t = (float * float) list  (* (start_position, grade) ascending *)

let flat = []

let of_segments segments =
  let rec check = function
    | [] | [ _ ] -> ()
    | (a, _) :: ((b, _) :: _ as rest) ->
      if a >= b then invalid_arg "Road.of_segments: positions must increase";
      check rest
  in
  check segments;
  segments

let hill ?(start = 500.0) ?(length = 400.0) ?(grade = 0.06) () =
  of_segments [ (start, grade); (start +. length, 0.0) ]

let rolling ?(start = 300.0) ?(wavelength = 500.0) ?(amplitude = 0.05) () =
  (* Eight alternating half-waves: up, down, up, down... ending flat. *)
  let segment i =
    let sign = if i mod 2 = 0 then 1.0 else -1.0 in
    (start +. (float_of_int i *. wavelength), sign *. amplitude)
  in
  of_segments (List.init 8 segment @ [ (start +. (8.0 *. wavelength), 0.0) ])

let grade_at t position =
  let rec go acc = function
    | [] -> acc
    | (start, grade) :: rest ->
      if position >= start then go grade rest else acc
  in
  go 0.0 t
