type reading = {
  vehicle_ahead : bool;
  target_range : float;
  target_rel_vel : float;
}

type t = {
  max_range : float;
  noise_sigma : float;
  dropout_per_s : float;
  prng : Monitor_util.Prng.t;
}

let no_target = { vehicle_ahead = false; target_range = 0.0; target_rel_vel = 0.0 }

let create ?(max_range = 150.0) ?(noise_sigma = 0.0) ?(dropout_per_s = 0.0)
    ?(seed = 0L) () =
  { max_range; noise_sigma; dropout_per_s; prng = Monitor_util.Prng.create seed }

let sense t ~dt ~lead_present ~lead_position ~lead_speed ~ego_position
    ~ego_speed ~ego_length =
  if not lead_present then no_target
  else begin
    let range = lead_position -. ego_position -. ego_length in
    if range <= 0.0 || range > t.max_range then no_target
    else if
      t.dropout_per_s > 0.0
      && Monitor_util.Prng.float t.prng 1.0 < t.dropout_per_s *. dt
    then no_target
    else begin
      let jitter sigma =
        if t.noise_sigma > 0.0 then
          Monitor_util.Prng.gaussian t.prng ~mu:0.0 ~sigma
        else 0.0
      in
      { vehicle_ahead = true;
        target_range = Float.max 0.0 (range +. jitter t.noise_sigma);
        target_rel_vel = lead_speed -. ego_speed +. jitter (t.noise_sigma *. 0.3) }
    end
  end
