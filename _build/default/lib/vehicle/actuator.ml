type t = {
  lag : float;
  min_output : float;
  max_output : float;
  mutable current : float;
  mutable target : float;
}

let create ~lag ~min_output ~max_output =
  if lag <= 0.0 then invalid_arg "Actuator.create: lag must be positive";
  if min_output > max_output then invalid_arg "Actuator.create: empty range";
  { lag; min_output; max_output; current = 0.0; target = 0.0 }

let output t = t.current

let step t ~dt ~request =
  if Float.is_finite request then
    t.target <- Float.max t.min_output (Float.min t.max_output request);
  let alpha = dt /. (t.lag +. dt) in
  t.current <- t.current +. (alpha *. (t.target -. t.current));
  t.current

let reset t =
  t.current <- 0.0;
  t.target <- 0.0
