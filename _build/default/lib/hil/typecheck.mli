(** The HIL platform's strong type checking of injected values (§V-C3).

    The dSPACE interface bounds-checked injections by data type: float
    slots accepted any float {e including} NaN and infinities, boolean
    slots accepted true/false, and enumeration slots accepted only declared
    indices — out-of-range enum injections were impossible on the HIL even
    though a real vehicle bus would carry them.  This asymmetry is the
    paper's "system vs. model" lesson, so the check is explicit and can be
    switched off (road mode). *)

type verdict = Accepted | Rejected of string

val check : Monitor_signal.Def.t -> Monitor_signal.Value.t -> verdict
(** HIL rules as above: floats unconstrained in value but must be floats;
    bools must be bools; enums must be declared indices. *)

val accepts : Monitor_signal.Def.t -> Monitor_signal.Value.t -> bool
