module Lead = Monitor_vehicle.Lead
module Road = Monitor_vehicle.Road

type driver_action =
  | Set_acc_speed of float
  | Select_headway of int
  | Press_accel of float
  | Press_brake of float
  | Release_pedals

type t = {
  name : string;
  description : string;
  duration : float;
  ego_speed : float;
  road : Road.t;
  lead_initial : (float * float) option;
  lead_events : (float * Lead.action) list;
  driver_events : (float * driver_action) list;
  radar_noise : float;
  radar_dropout : float;
}

let make ?(description = "") ?(duration = 30.0) ?(ego_speed = 25.0)
    ?(road = Road.flat) ?(lead_initial = None) ?(lead_events = [])
    ?(driver_events = []) ?(radar_noise = 0.0) ?(radar_dropout = 0.0) ~name
    () =
  if duration <= 0.0 then invalid_arg "Scenario.make: duration must be positive";
  { name; description; duration; ego_speed; road; lead_initial; lead_events;
    driver_events; radar_noise; radar_dropout }

let engage_at_start ?(speed = 27.0) ?(headway = 1) () =
  [ (0.0, Select_headway headway); (0.0, Set_acc_speed speed) ]

let steady_follow ?(duration = 26.0) () =
  make ~name:"steady_follow"
    ~description:"cruise behind a slightly slower lead (Table I workload)"
    ~duration ~ego_speed:25.0
    ~lead_initial:(Some (60.0, 24.0))
    ~driver_events:(engage_at_start ())
    ()

let approach_and_follow ?(duration = 40.0) () =
  make ~name:"approach_and_follow"
    ~description:"empty road, slower lead enters sensor range"
    ~duration ~ego_speed:25.0
    ~lead_events:[ (8.0, Lead.Appear { gap = 140.0; speed = 20.0 }) ]
    ~driver_events:(engage_at_start ())
    ()

let cut_in ?(duration = 40.0) () =
  make ~name:"cut_in"
    ~description:"slow vehicle cuts in close while ego recovers speed"
    ~duration ~ego_speed:18.0
    ~lead_initial:(Some (80.0, 15.0))
    ~lead_events:
      [ (* The original lead drifts away, ego speeds back up toward the
           set speed, then a slower car drops in at a short gap. *)
        (6.0, Lead.Set_speed 26.0);
        (18.0, Lead.Appear { gap = 13.0; speed = 17.0 });
        (19.5, Lead.Set_speed 25.0);
        (30.0, Lead.Set_speed 22.0) ]
    ~driver_events:(engage_at_start ~speed:24.0 ~headway:2 ())
    ()

let overtake ?(duration = 45.0) () =
  make ~name:"overtake"
    ~description:"lead leaves the lane as ego passes; faster lead later"
    ~duration ~ego_speed:22.0
    ~lead_initial:(Some (40.0, 20.0))
    ~lead_events:
      [ (12.0, Lead.Disappear);
        (25.0, Lead.Appear { gap = 70.0; speed = 27.0 }) ]
    ~driver_events:(engage_at_start ~speed:26.0 ())
    ()

let hill_run ?(duration = 90.0) () =
  make ~name:"hill_run" ~description:"rolling grades, no target"
    ~duration ~ego_speed:24.0
    ~road:(Road.rolling ~start:200.0 ~wavelength:400.0 ~amplitude:0.055 ())
    ~driver_events:(engage_at_start ~speed:25.0 ())
    ()

let stop_and_go ?(duration = 80.0) () =
  make ~name:"stop_and_go"
    ~description:"lead brakes to standstill and pulls away"
    ~duration ~ego_speed:15.0
    ~lead_initial:(Some (35.0, 15.0))
    ~lead_events:
      [ (10.0, Lead.Set_speed 6.0);
        (20.0, Lead.Set_speed 0.0);
        (35.0, Lead.Set_speed 12.0);
        (55.0, Lead.Set_speed 3.0);
        (65.0, Lead.Set_speed 14.0) ]
    ~driver_events:(engage_at_start ~speed:20.0 ~headway:0 ())
    ()

let urban_following ?(duration = 70.0) () =
  make ~name:"urban_following"
    ~description:"low-speed following with speed changes and a dropout"
    ~duration ~ego_speed:10.0
    ~lead_initial:(Some (25.0, 9.0))
    ~lead_events:
      [ (8.0, Lead.Set_speed 14.0);
        (20.0, Lead.Set_speed 6.0);
        (32.0, Lead.Set_speed 13.0);
        (45.0, Lead.Set_speed 8.0);
        (58.0, Lead.Set_speed 15.0) ]
    ~driver_events:(engage_at_start ~speed:16.0 ~headway:0 ())
    ~radar_dropout:0.02
    ()

let with_noise sigma t = { t with radar_noise = sigma }

let road_scenarios () =
  List.map (with_noise 0.4)
    [ approach_and_follow (); cut_in (); overtake (); hill_run ();
      stop_and_go (); urban_following () ]
