type entry =
  | Override of Monitor_signal.Value.t
  | Transform of (Monitor_signal.Value.t -> Monitor_signal.Value.t)

type t = (string, entry) Hashtbl.t

let create () = Hashtbl.create 16

let set t ~signal ~value = Hashtbl.replace t signal (Override value)

let set_transform t ~signal f = Hashtbl.replace t signal (Transform f)

let clear t ~signal = Hashtbl.remove t signal

let clear_all t = Hashtbl.reset t

let active t = Hashtbl.fold (fun signal _ acc -> signal :: acc) t []

let apply t ~signal true_value =
  match Hashtbl.find_opt t signal with
  | Some (Override injected) -> injected
  | Some (Transform f) -> f true_value
  | None -> true_value
