module Def = Monitor_signal.Def
module Value = Monitor_signal.Value

type verdict = Accepted | Rejected of string

let check (def : Def.t) value =
  match def.Def.kind, value with
  | Def.Float_kind _, Value.Float _ -> Accepted
  | Def.Bool_kind, Value.Bool _ -> Accepted
  | Def.Enum_kind { n_values }, Value.Enum i ->
    if i >= 0 && i < n_values then Accepted
    else
      Rejected
        (Printf.sprintf "enum index %d outside 0..%d on %s" i (n_values - 1)
           def.Def.name)
  | (Def.Float_kind _ | Def.Bool_kind | Def.Enum_kind _), _ ->
    Rejected
      (Printf.sprintf "%s value on %s signal %s" (Value.type_name value)
         (Def.type_string def) def.Def.name)

let accepts def value =
  match check def value with
  | Accepted -> true
  | Rejected _ -> false
