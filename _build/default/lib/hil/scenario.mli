(** Test scenarios: scripted driver, lead vehicle and road.

    The HIL campaigns of the paper ran against steady target-following;
    the real-vehicle logs covered "a couple hours of representative
    driving" — urban following, cut-ins, overtaking, hills, stop-and-go —
    which is what made Rules #2/#3/#4 fire "reasonably".  Each scenario
    here is a deterministic script for those situations. *)

type driver_action =
  | Set_acc_speed of float     (** m/s; > 5 engages the feature *)
  | Select_headway of int
  | Press_accel of float       (** pedal %% *)
  | Press_brake of float       (** bar *)
  | Release_pedals

type t = {
  name : string;
  description : string;
  duration : float;                        (** seconds *)
  ego_speed : float;                       (** initial, m/s *)
  road : Monitor_vehicle.Road.t;
  lead_initial : (float * float) option;   (** (gap m, speed m/s) *)
  lead_events : (float * Monitor_vehicle.Lead.action) list;
  driver_events : (float * driver_action) list;
  radar_noise : float;                     (** sigma, m *)
  radar_dropout : float;                   (** probability per second *)
}

val make :
  ?description:string -> ?duration:float -> ?ego_speed:float ->
  ?road:Monitor_vehicle.Road.t -> ?lead_initial:(float * float) option ->
  ?lead_events:(float * Monitor_vehicle.Lead.action) list ->
  ?driver_events:(float * driver_action) list -> ?radar_noise:float ->
  ?radar_dropout:float -> name:string -> unit -> t

(** {2 Standard scenarios} *)

val steady_follow : ?duration:float -> unit -> t
(** The Table I workload: cruise at 27 m/s set speed behind a 24 m/s lead
    60 m ahead.  Default duration 26 s (2 s settle + 20 s injection hold +
    tail). *)

val approach_and_follow : ?duration:float -> unit -> t
(** Empty road, then a slower lead enters radar range — exercises the
    TargetRange 0-to-value activation jump (§V-C2). *)

val cut_in : ?duration:float -> unit -> t
(** Following at speed; a slower vehicle cuts in at a small gap while the
    ego is still recovering speed — Rule #2's "reasonable violation". *)

val overtake : ?duration:float -> unit -> t
(** The lead leaves the lane (ego passes), a faster one appears later. *)

val hill_run : ?duration:float -> unit -> t
(** No target, rolling grades — downhill overspeed then climbing torque,
    Rules #3/#4's "reasonable violations". *)

val stop_and_go : ?duration:float -> unit -> t
(** Lead brakes to standstill and pulls away again — full-speed-range
    behaviour with small headways. *)

val urban_following : ?duration:float -> unit -> t
(** Low-speed following with speed changes and a brief radar dropout. *)

val road_scenarios : unit -> t list
(** The "real vehicle log" set: all of the above except [steady_follow],
    with sensor noise enabled. *)
