lib/hil/mux.ml: Hashtbl Monitor_signal
