lib/hil/scenario.ml: List Monitor_vehicle
