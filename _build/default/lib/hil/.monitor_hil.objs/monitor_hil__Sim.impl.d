lib/hil/sim.ml: Float Hashtbl List Monitor_can Monitor_fsracc Monitor_signal Monitor_trace Monitor_util Monitor_vehicle Mux Option Scenario Typecheck
