lib/hil/scenario.mli: Monitor_vehicle
