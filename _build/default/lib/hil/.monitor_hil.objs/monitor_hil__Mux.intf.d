lib/hil/mux.mli: Monitor_signal
