lib/hil/sim.mli: Monitor_signal Monitor_trace Scenario
