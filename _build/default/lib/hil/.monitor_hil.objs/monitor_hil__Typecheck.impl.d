lib/hil/typecheck.ml: Monitor_signal Printf
