lib/hil/typecheck.mli: Monitor_signal
