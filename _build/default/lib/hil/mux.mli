(** Injection multiplexors.

    The paper routed each FSRACC input through an added multiplexor with an
    inject value and an enable, controllable from ControlDesk/rtplib: with
    the enable off the true signal passes through, with it on the injected
    value replaces it on the network path — so the feature {e and} the
    passive monitor both see the faulted value.  One table instance covers
    all input signals. *)

type t

val create : unit -> t

val set : t -> signal:string -> value:Monitor_signal.Value.t -> unit
(** Enable injection on a signal (overwrites a previous injection). *)

val set_transform :
  t -> signal:string -> (Monitor_signal.Value.t -> Monitor_signal.Value.t) ->
  unit
(** Value-dependent injection: the function is applied to the live true
    value on every pass — how stuck/flipped-bit faults are modelled (the
    corruption rides on the changing signal instead of freezing it). *)

val clear : t -> signal:string -> unit

val clear_all : t -> unit

val active : t -> string list
(** Names of signals currently injected. *)

val apply : t -> signal:string -> Monitor_signal.Value.t ->
  Monitor_signal.Value.t
(** [apply t ~signal true_value] is the effective value after the mux. *)
