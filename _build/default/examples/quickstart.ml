(* Quickstart: write a safety rule in the specification language, run it
   over a small log, and read the oracle's verdict.

   Run with: dune exec examples/quickstart.exe *)

module Value = Monitor_signal.Value
module Trace = Monitor_trace.Trace
module Record = Monitor_trace.Record

let () =
  (* 1. A rule: "while braking is requested, the requested deceleration
     must actually decelerate".  This is Rule #5 of the paper. *)
  let rule =
    Monitor_mtl.Spec.make ~name:"decel_is_decel"
      ~description:"a requested deceleration must be negative"
      (Monitor_mtl.Parser.formula_of_string_exn
         "BrakeRequested -> RequestedDecel <= 0.0")
  in

  (* 2. A log.  In production this comes from a CAN capture
     (Monitor_can.Logger / Monitor_trace.Csv); here we write it by hand.
     At t=0.03 the system reports braking with a positive "deceleration" —
     the defect the monitor should catch. *)
  let log =
    Trace.of_list
      [ Record.make ~time:0.00 ~name:"BrakeRequested" ~value:(Value.Bool false);
        Record.make ~time:0.00 ~name:"RequestedDecel" ~value:(Value.Float 0.0);
        Record.make ~time:0.01 ~name:"BrakeRequested" ~value:(Value.Bool true);
        Record.make ~time:0.01 ~name:"RequestedDecel" ~value:(Value.Float (-2.5));
        Record.make ~time:0.02 ~name:"BrakeRequested" ~value:(Value.Bool true);
        Record.make ~time:0.02 ~name:"RequestedDecel" ~value:(Value.Float (-1.0));
        Record.make ~time:0.03 ~name:"BrakeRequested" ~value:(Value.Bool true);
        Record.make ~time:0.03 ~name:"RequestedDecel" ~value:(Value.Float 0.3);
        Record.make ~time:0.04 ~name:"BrakeRequested" ~value:(Value.Bool false);
        Record.make ~time:0.04 ~name:"RequestedDecel" ~value:(Value.Float 0.0) ]
  in

  (* 3. The oracle. *)
  let outcome = Monitor_oracle.Oracle.check_spec rule log in
  print_endline (Monitor_oracle.Report.render_outcome outcome);

  (* 4. The same verdicts through the online (runtime) monitor — this is
     what a bolt-on box on the live bus would compute. *)
  let monitor = Monitor_mtl.Online.create rule in
  let snapshots = Monitor_oracle.Oracle.snapshots_of_trace log in
  List.iter
    (fun snap ->
      List.iter
        (fun r ->
          Printf.printf "online: t=%.2f verdict %s\n" r.Monitor_mtl.Online.time
            (Monitor_mtl.Verdict.to_string r.Monitor_mtl.Online.verdict))
        (Monitor_mtl.Online.step monitor snap))
    snapshots;
  ignore (Monitor_mtl.Online.finalize monitor)
