(* The bolt-on monitor as it would run at runtime: an online, constant-
   memory monitor fed snapshot by snapshot from a live CAN tap, emitting
   verdicts as soon as they are decidable.  Bounded-future rules resolve
   with at most their horizon of delay; everything else resolves
   immediately.

   Run with: dune exec examples/bolt_on_live.exe *)

module Sim = Monitor_hil.Sim
module Scenario = Monitor_hil.Scenario
module Mtl = Monitor_mtl
module Oracle = Monitor_oracle.Oracle

let () =
  (* Capture a faulted HIL run: a positive TargetRelVel injection makes
     the feature chase a target it believes is fleeing. *)
  let plan =
    [ (2.0, Sim.Set ("TargetRelVel", Monitor_signal.Value.Float 700.0));
      (22.0, Sim.Clear_all) ]
  in
  let result =
    Sim.run ~plan (Sim.default_config (Scenario.steady_follow ()))
  in

  (* "Replay" the capture through the online monitor as if live. *)
  let rule = Monitor_oracle.Rules.rule 6 in
  Printf.printf "monitoring: %s\nhorizon: %.2fs\n\n"
    (Mtl.Formula.to_string rule.Mtl.Spec.formula)
    (Mtl.Spec.horizon rule);
  let monitor = Mtl.Online.create rule in
  let snapshots = Oracle.snapshots_of_trace result.Sim.trace in
  let violations = ref 0 in
  let max_lag = ref 0.0 in
  List.iter
    (fun snap ->
      let now = snap.Monitor_trace.Snapshot.time in
      List.iter
        (fun r ->
          max_lag := Float.max !max_lag (now -. r.Mtl.Online.time);
          if Mtl.Verdict.equal r.Mtl.Online.verdict Mtl.Verdict.False then begin
            incr violations;
            if !violations <= 5 then
              Printf.printf
                "t=%6.2f  VIOLATION about t=%6.2f (decided %.0f ms later)\n" now
                r.Mtl.Online.time
                ((now -. r.Mtl.Online.time) *. 1000.0)
          end)
        (Mtl.Online.step monitor snap))
    snapshots;
  let leftovers = Mtl.Online.finalize monitor in
  Printf.printf
    "\n%d violating ticks (%d resolved only at end of log)\n\
     worst resolution lag while live: %.0f ms\n"
    !violations
    (List.length
       (List.filter
          (fun r -> Mtl.Verdict.equal r.Mtl.Online.verdict Mtl.Verdict.False)
          leftovers))
    (!max_lag *. 1000.0)
