(* Offline analysis of "real vehicle" driving logs (road-mode simulation):
   strict rules, triage by intensity and duration, then the relaxed rules —
   the paper's SS IV-A loop.  Also shows CSV export/import, the format a
   real capture would arrive in.

   Run with: dune exec examples/real_vehicle_logs.exe *)

module Sim = Monitor_hil.Sim
module Scenario = Monitor_hil.Scenario
module Oracle = Monitor_oracle.Oracle
module Intent = Monitor_oracle.Intent
module Rules = Monitor_oracle.Rules
module Report = Monitor_oracle.Report
module Csv = Monitor_trace.Csv

let () =
  (* Drive the hill scenario on the "real vehicle" (sensor noise, no HIL
     type checking). *)
  let scenario = Scenario.hill_run ~duration:60.0 () in
  let result =
    Sim.run (Sim.default_config ~environment:Sim.Road ~seed:7L scenario)
  in

  (* Persist the capture as CSV and read it back — the oracle only ever
     sees the log, never the vehicle. *)
  let path = Filename.temp_file "vehicle_log" ".csv" in
  Csv.save path result.Sim.trace;
  Printf.printf "captured %d records to %s\n\n"
    (Monitor_trace.Trace.length result.Sim.trace)
    path;
  let log =
    match Csv.load path with
    | Ok t -> t
    | Error msg -> failwith msg
  in

  (* Strict rules + triage. *)
  let outcomes = Oracle.check Rules.all log in
  List.iteri
    (fun i outcome ->
      let classification =
        match Intent.classify Intent.transient_tolerant outcome with
        | `Clean -> "clean"
        | `Reasonable_violations -> "reasonable violations only"
        | `Safety_violations -> "SAFETY VIOLATIONS"
      in
      Printf.printf "rule #%d: %s\n" i classification;
      if outcome.Oracle.status = Oracle.Violated then
        print_endline ("  " ^ Report.render_outcome outcome))
    outcomes;

  (* The relaxation loop: re-check with the paper's relaxed variants. *)
  print_newline ();
  let relaxed =
    Oracle.check
      [ Rules.relaxed_rule2 (); Rules.relaxed_rule3 (); Rules.relaxed_rule4 () ]
      log
  in
  List.iter (fun o -> print_endline (Report.render_outcome o)) relaxed;
  Sys.remove path
