(* The deployed shape of the bolt-on box: rules loaded from a versioned
   .spec file, all of them run side by side by a Monitor_set over one
   snapshot stream, violations surfacing through a live callback.

   Run with: dune exec examples/spec_fleet.exe *)

module Mtl = Monitor_mtl
module Sim = Monitor_hil.Sim
module Scenario = Monitor_hil.Scenario

let spec_source =
  {|spec decel_is_decel "decelerations must decelerate"
severity RequestedDecel / 0.5
formula BrakeRequested -> RequestedDecel <= 0.0

spec no_push_when_close "no torque into a close target"
machine tracking {
  initial clear
  states clear target
  clear -> target when VehicleAhead
  target -> clear when not VehicleAhead
}
formula
  (mode(tracking, target) and TargetRange < 10.0)
    -> (not TorqueRequested or RequestedTorque < 50.0)

spec speed_sane "reported speed stays physical"
formula Velocity >= 0.0 and Velocity < 120.0
|}

let () =
  let specs = Mtl.Spec_file.of_string_exn spec_source in
  Printf.printf "loaded %d specs from the file\n\n" (List.length specs);

  (* A faulted HIL capture to monitor. *)
  let plan =
    [ (2.0, Sim.Set ("Velocity", Monitor_signal.Value.Float (-400.0)));
      (10.0, Sim.Clear_all) ]
  in
  let result =
    Sim.run ~plan
      (Sim.default_config (Scenario.steady_follow ~duration:16.0 ()))
  in

  let first_alarm = Hashtbl.create 4 in
  let set =
    Mtl.Monitor_set.create
      ~on_violation:(fun e ->
        let name = e.Mtl.Monitor_set.spec.Mtl.Spec.name in
        if not (Hashtbl.mem first_alarm name) then begin
          Hashtbl.add first_alarm name ();
          Printf.printf "ALARM %-20s first violation about t=%.2fs\n" name
            e.Mtl.Monitor_set.resolution.Mtl.Online.time
        end)
      specs
  in
  let snapshots =
    Monitor_oracle.Oracle.snapshots_of_trace result.Sim.trace
  in
  List.iter (fun snap -> ignore (Mtl.Monitor_set.step set snap)) snapshots;
  ignore (Mtl.Monitor_set.finalize set);
  print_newline ();
  List.iter
    (fun (name, count) -> Printf.printf "%-20s %d violating ticks\n" name count)
    (Mtl.Monitor_set.violations set)
