examples/real_vehicle_logs.ml: Filename List Monitor_hil Monitor_oracle Monitor_trace Printf Sys
