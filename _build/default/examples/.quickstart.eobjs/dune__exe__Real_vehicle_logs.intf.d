examples/real_vehicle_logs.mli:
