examples/bolt_on_live.ml: Float List Monitor_hil Monitor_mtl Monitor_oracle Monitor_signal Monitor_trace Printf
