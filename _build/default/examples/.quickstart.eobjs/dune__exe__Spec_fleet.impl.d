examples/spec_fleet.ml: Hashtbl List Monitor_hil Monitor_mtl Monitor_oracle Monitor_signal Printf
