examples/quickstart.mli:
