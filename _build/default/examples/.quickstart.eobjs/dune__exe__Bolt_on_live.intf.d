examples/bolt_on_live.mli:
