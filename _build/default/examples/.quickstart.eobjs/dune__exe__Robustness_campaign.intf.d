examples/robustness_campaign.mli:
