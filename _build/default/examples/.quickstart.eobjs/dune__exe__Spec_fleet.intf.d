examples/spec_fleet.mli:
