examples/quickstart.ml: List Monitor_mtl Monitor_oracle Monitor_signal Monitor_trace Printf
