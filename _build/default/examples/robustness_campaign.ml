(* A miniature robustness-testing campaign: Ballista-style exceptional
   values and bit flips against two FSRACC inputs on the simulated HIL,
   with the seven-rule oracle deciding each run.

   Run with: dune exec examples/robustness_campaign.exe *)

module Sim = Monitor_hil.Sim
module Scenario = Monitor_hil.Scenario
module Fault = Monitor_inject.Fault
module Oracle = Monitor_oracle.Oracle
module Rules = Monitor_oracle.Rules
module Report = Monitor_oracle.Report

let scenario = Scenario.steady_follow ~duration:34.0 ()

let run_one plan =
  let result = Sim.run ~plan (Sim.default_config scenario) in
  Oracle.check Rules.all result.Sim.trace

let campaign_row ~prng ~kind ~signal ~injections =
  let def = Monitor_fsracc.Io.find_exn signal in
  let violated = Array.make (List.length Rules.all) false in
  for _ = 1 to injections do
    let command = Fault.command prng kind def in
    let plan = [ (2.0, command); (22.0, Sim.Clear_all) ] in
    List.iteri
      (fun i outcome ->
        if outcome.Oracle.status = Oracle.Violated then violated.(i) <- true)
      (run_one plan)
  done;
  { Report.kind_label = Fault.kind_label kind;
    target_label = signal;
    letters = Array.to_list (Array.map (fun v -> if v then "V" else "S") violated) }

let () =
  let prng = Monitor_util.Prng.create 42L in
  let rows =
    [ campaign_row ~prng ~kind:Fault.Ballista ~signal:"TargetRange" ~injections:3;
      campaign_row ~prng ~kind:Fault.Ballista ~signal:"ThrotPos" ~injections:3;
      campaign_row ~prng ~kind:(Fault.Bit_flip 2) ~signal:"Velocity" ~injections:3;
      campaign_row ~prng ~kind:Fault.Random_value ~signal:"ACCSetSpeed" ~injections:3 ]
  in
  print_string
    (Report.render_table ~title:"MINI FAULT-INJECTION CAMPAIGN"
       ~rule_count:(List.length Rules.all) rows);
  print_newline ();
  print_string (Report.summarize rows ~rule_count:(List.length Rules.all))
