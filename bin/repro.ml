(* Command-line driver: regenerate each of the paper's artefacts. *)

open Cmdliner

let quick_arg =
  let doc = "Run a reduced campaign (fewer injections per test)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let seed_arg default =
  let doc = "Random seed for the campaign / scenario set." in
  Arg.(value & opt int64 default & info [ "seed" ] ~doc)

let robust_arg =
  let doc =
    "Evaluate on the quantitative robustness kernel too: outcomes carry \
     signed margins, and ranked output sorts most-severe first."
  in
  Arg.(value & flag & info [ "robust" ] ~doc)

let jobs_arg =
  let doc =
    "Number of worker domains for parallel campaigns (0 = one per           available core, 1 = sequential).  Output is byte-identical at any           job count."
  in
  let env = Cmd.Env.info "CPS_MONITOR_JOBS" ~doc in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~env ~docv:"N" ~doc)

(* [jobs = 0] lets the pool pick its own default; any other value is the
   requested domain count (the pool itself degrades to sequential for
   [jobs <= 1]). *)
let with_pool jobs f =
  let num_domains = if jobs = 0 then None else Some jobs in
  Monitor_util.Pool.with_pool ?num_domains f

(* Telemetry ------------------------------------------------------------- *)

module Obs = Monitor_obs.Obs
module Metrics = Monitor_obs.Metrics
module Tracer = Monitor_obs.Tracer
module Progress = Monitor_obs.Progress
module Serve = Monitor_obs.Serve

type telemetry = {
  metrics_file : string option;
  trace_file : string option;
  progress_flag : bool;
  status_port : int option;
}

let telemetry_term =
  let metrics_arg =
    let doc =
      "Enable metrics recording and write a dump to $(docv) at exit \
       (Prometheus text exposition; a .json extension selects the JSON \
       rendering).  The experiment report on stdout is unaffected."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let trace_arg =
    let doc =
      "Record spans and write Chrome trace_event JSON to $(docv) at exit; \
       load it in chrome://tracing or Perfetto."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let progress_arg =
    let doc =
      "Print a throttled progress heartbeat (runs completed/total, ETA) to \
       stderr while a campaign runs."
    in
    Arg.(value & flag & info [ "progress" ] ~doc)
  in
  let status_port_arg =
    let doc =
      "Serve a live status endpoint on 127.0.0.1:$(docv) while the command \
       runs: GET /metrics (Prometheus text, live registry), /healthz, \
       /plan (the fused evaluation plan of the loaded rules as JSON), \
       and — under $(b,fleet) — /sessions (per-VIN state as JSON).  \
       Port 0 picks an ephemeral port (printed to stderr)."
    in
    Arg.(value
         & opt (some int) None
         & info [ "status-port" ] ~docv:"PORT" ~doc)
  in
  let make metrics_file trace_file progress_flag status_port =
    { metrics_file; trace_file; progress_flag; status_port }
  in
  Term.(const make $ metrics_arg $ trace_arg $ progress_arg $ status_port_arg)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* The full lint environment for the built-in system: message existence
   and periods from the FSRACC DBC, physical ranges from the signal
   definitions. *)
let fsracc_lint_env () =
  Monitor_analysis.Speclint.env ~dbc:Monitor_fsracc.Io.dbc
    ~defs:(List.map snd Monitor_fsracc.Io.signals)
    ()

(* /plan payload: the fused evaluation plan of the built-in rule set —
   what every campaign and the fleet actually run.  Pure, so computed
   once on first scrape. *)
let builtin_plan_json =
  lazy
    (let module P = Monitor_analysis.Specplan in
     P.to_json (P.analyze ~env:(fsracc_lint_env ()) Monitor_oracle.Rules.all))

let plan_route () =
  ( "/plan",
    fun () ->
      Serve.ok ~content_type:"application/json" (Lazy.force builtin_plan_json)
  )

(* Bracket one command invocation: flip the process-global gates on, run,
   and dump to the requested files even if the run raises — a crashed
   campaign's partial counters are exactly when the dump is wanted.  [f]
   receives a per-experiment progress-reporter factory ([None]s when
   --progress wasn't given).

   Two live surfaces ride on the same bracket: SIGUSR1 flushes the
   current metrics/trace to the --metrics/--trace paths mid-run (the
   files are rewritten at exit as usual), and --status-port mounts the
   HTTP status endpoint for the duration of the run ([extra_routes] lets
   the fleet add /sessions). *)
let with_telemetry ?(extra_routes = []) tel f =
  if tel.metrics_file <> None || tel.status_port <> None then
    Obs.enable_metrics ();
  let tracer = Option.map (fun _ -> Tracer.create ()) tel.trace_file in
  Obs.set_tracer tracer;
  let progress ?unit_name label =
    if tel.progress_flag then Some (Progress.create ?unit_name ~label ())
    else None
  in
  let dump () =
    Option.iter
      (fun path ->
        write_file path
          (if Filename.check_suffix path ".json" then
             Metrics.render_json Obs.registry
           else Metrics.render_prometheus Obs.registry))
      tel.metrics_file;
    match tel.trace_file, tracer with
    | Some path, Some t -> write_file path (Tracer.to_json t)
    | (Some _ | None), _ -> ()
  in
  (* A dump walks the registry under its mutex and opens files — neither
     is safe from inside a signal handler, which OCaml runs on the main
     thread and could land while that same thread already holds the
     registry mutex (metric registration, reset).  The handler therefore
     only raises a flag; a watcher domain notices it and performs the
     dump off the main thread. *)
  let usr1_requested = Atomic.make false in
  let prev_usr1 =
    if tel.metrics_file <> None || tel.trace_file <> None then
      try
        Some
          (Sys.signal Sys.sigusr1
             (Sys.Signal_handle (fun _ -> Atomic.set usr1_requested true)))
      with Invalid_argument _ | Sys_error _ -> None
    else None
  in
  let watcher_stop = Atomic.make false in
  let watcher =
    Option.map
      (fun (_ : Sys.signal_behavior) ->
        Domain.spawn (fun () ->
            while not (Atomic.get watcher_stop) do
              if Atomic.compare_and_set usr1_requested true false then (
                try dump () with _ -> ());
              Unix.sleepf 0.05
            done))
      prev_usr1
  in
  let server =
    Option.map
      (fun port ->
        let routes =
          [ Serve.metrics_route (); Serve.health_route (); plan_route () ]
          @ extra_routes
        in
        let s = Serve.create ~port ~routes () in
        Printf.eprintf "status endpoint: http://127.0.0.1:%d/\n%!"
          (Serve.port s);
        s)
      tel.status_port
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter Serve.stop server;
      (match prev_usr1 with
      | Some behaviour -> (
        try Sys.set_signal Sys.sigusr1 behaviour with _ -> ())
      | None -> ());
      (match watcher with
      | Some d ->
        Atomic.set watcher_stop true;
        Domain.join d
      | None -> ());
      Obs.set_tracer None;
      Obs.disable_metrics ();
      dump ())
    (fun () -> f ~progress)

let figure1_cmd =
  let run () = print_string (Monitor_experiments.Figure1.rendered ()) in
  Cmd.v (Cmd.info "figure1" ~doc:"Print Figure 1: the FSRACC I/O signals")
    Term.(const run $ const ())

let table1_cmd =
  let run quick robust seed jobs tel =
    let base =
      if quick then Monitor_experiments.Table1.quick_options
      else Monitor_experiments.Table1.paper_options
    in
    let options = { base with Monitor_experiments.Table1.seed } in
    let t =
      with_telemetry tel (fun ~progress ->
          with_pool jobs (fun pool ->
              Monitor_experiments.Table1.run ~options ~pool
                ?progress:(progress "table1") ()))
    in
    print_string (Monitor_experiments.Table1.rendered t);
    if robust then begin
      print_newline ();
      print_string (Monitor_experiments.Table1.rendered_ranked t)
    end
  in
  Cmd.v
    (Cmd.info "table1"
       ~doc:"Regenerate Table I: the fault-injection result matrix")
    Term.(const run $ quick_arg $ robust_arg $ seed_arg 2014L $ jobs_arg
          $ telemetry_term)

let vehicle_logs_cmd =
  let run robust seed jobs tel =
    let t =
      with_telemetry tel (fun ~progress ->
          with_pool jobs (fun pool ->
              Monitor_experiments.Vehicle_logs.run ~seed ~robust ~pool
                ?progress:(progress "vehicle-logs") ()))
    in
    print_string (Monitor_experiments.Vehicle_logs.rendered t)
  in
  Cmd.v
    (Cmd.info "vehicle-logs"
       ~doc:"Analyse real-vehicle (road-mode) logs with the same rules (SS IV-A)")
    Term.(const run $ robust_arg $ seed_arg 77L $ jobs_arg $ telemetry_term)

let multirate_cmd =
  let run seed =
    let t = Monitor_experiments.Multirate.run ~seed () in
    print_string (Monitor_experiments.Multirate.rendered t)
  in
  Cmd.v
    (Cmd.info "multirate"
       ~doc:"Demonstrate the multi-rate sampling hazard (SS V-C1)")
    Term.(const run $ seed_arg 5L)

let warmup_cmd =
  let run seed =
    let t = Monitor_experiments.Warmup.run ~seed () in
    print_string (Monitor_experiments.Warmup.rendered t)
  in
  Cmd.v
    (Cmd.info "warmup"
       ~doc:"Demonstrate discrete-jump warm-up (SS V-C2)")
    Term.(const run $ seed_arg 9L)

let ablation_cmd =
  let run seed jobs tel =
    let t =
      with_telemetry tel (fun ~progress ->
          with_pool jobs (fun pool ->
              Monitor_experiments.Ablation.run ~seed ~pool
                ?progress:(progress "ablation") ()))
    in
    print_string (Monitor_experiments.Ablation.rendered t)
  in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"Ablate the monitor's design choices (period, jitter,              change operator, warm-up hold)")
    Term.(const run $ seed_arg 21L $ jobs_arg $ telemetry_term)

let lossy_bus_cmd =
  let run quick seed jobs tel =
    let base =
      if quick then Monitor_experiments.Lossy_bus.quick_options
      else Monitor_experiments.Lossy_bus.paper_options
    in
    let options = { base with Monitor_experiments.Lossy_bus.seed } in
    let t =
      with_telemetry tel (fun ~progress ->
          with_pool jobs (fun pool ->
              Monitor_experiments.Lossy_bus.run ~options ~pool
                ?progress:(progress "lossy-bus") ()))
    in
    print_string (Monitor_experiments.Lossy_bus.rendered t)
  in
  Cmd.v
    (Cmd.info "lossy-bus"
       ~doc:"E7: verdict degradation when the monitor's bus tap loses,              delays or corrupts frames")
    Term.(const run $ quick_arg $ seed_arg 2014L $ jobs_arg $ telemetry_term)

(* Re-encode a decoded trace into CAN frames at the recorded times: a
   frame is emitted whenever the last signal of its message updates —
   the shape a passive tap on the simulated bus would capture. *)
let frames_of_trace dbc trace =
  let frames = ref [] in
  let store : (string, Monitor_signal.Value.t) Hashtbl.t = Hashtbl.create 32 in
  Monitor_trace.Trace.iter
    (fun r ->
      Hashtbl.replace store r.Monitor_trace.Record.name
        r.Monitor_trace.Record.value;
      match
        Monitor_can.Dbc.message_of_signal dbc r.Monitor_trace.Record.name
      with
      | Some m ->
        let signals = Monitor_can.Message.signal_names m in
        let last_signal = List.nth signals (List.length signals - 1) in
        if String.equal last_signal r.Monitor_trace.Record.name then
          frames :=
            ( r.Monitor_trace.Record.time,
              Monitor_can.Message.encode m ~lookup:(Hashtbl.find_opt store) )
            :: !frames
      | None -> ())
    trace;
  List.rev !frames

let simulate_cmd =
  let scenario_arg =
    let doc =
      "Scenario name: steady_follow, approach_and_follow, cut_in, overtake,        hill_run, stop_and_go, urban_following."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO" ~doc)
  in
  let out_arg =
    let doc = "Output path for the captured log." in
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~doc)
  in
  let road_arg =
    let doc = "Road mode: sensor noise, no HIL type checking." in
    Arg.(value & flag & info [ "road" ] ~doc)
  in
  let format_arg =
    let doc = "Log format: csv (decoded signals) or candump (raw frames)." in
    Arg.(value & opt (enum [ ("csv", `Csv); ("candump", `Candump) ]) `Csv
         & info [ "format"; "f" ] ~doc)
  in
  let run name out road format seed =
    let scenario =
      match name with
      | "steady_follow" -> Monitor_hil.Scenario.steady_follow ()
      | "approach_and_follow" -> Monitor_hil.Scenario.approach_and_follow ()
      | "cut_in" -> Monitor_hil.Scenario.cut_in ()
      | "overtake" -> Monitor_hil.Scenario.overtake ()
      | "hill_run" -> Monitor_hil.Scenario.hill_run ()
      | "stop_and_go" -> Monitor_hil.Scenario.stop_and_go ()
      | "urban_following" -> Monitor_hil.Scenario.urban_following ()
      | other ->
        prerr_endline ("unknown scenario: " ^ other);
        exit 1
    in
    let environment =
      if road then Monitor_hil.Sim.Road else Monitor_hil.Sim.Hil
    in
    let config = Monitor_hil.Sim.default_config ~environment ~seed scenario in
    (* Capture frames for candump by re-running with a frame logger would
       duplicate work; the Sim result already carries the decoded trace,
       and the CSV path covers the common case.  For candump we re-encode
       via the DBC schedule inside a fresh run. *)
    (match format with
     | `Csv ->
       let result = Monitor_hil.Sim.run config in
       Monitor_trace.Csv.save out result.Monitor_hil.Sim.trace;
       Printf.printf "wrote %d records to %s\n"
         (Monitor_trace.Trace.length result.Monitor_hil.Sim.trace)
         out
     | `Candump ->
       let result = Monitor_hil.Sim.run config in
       let frames =
         frames_of_trace Monitor_fsracc.Io.dbc result.Monitor_hil.Sim.trace
       in
       Monitor_can.Candump.save out frames;
       Printf.printf "wrote %d frames to %s\n" (List.length frames) out)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run a scenario and store the captured log (CSV or candump)")
    Term.(const run $ scenario_arg $ out_arg $ road_arg $ format_arg
          $ seed_arg 1L)

let fleet_cmd =
  let sessions_arg =
    let doc = "Number of concurrent per-VIN monitor sessions." in
    Arg.(value & opt int 1000 & info [ "sessions"; "n" ] ~docv:"N" ~doc)
  in
  let policy_arg =
    let doc = "Overload policy for full shard queues: block, shed, reject." in
    Arg.(value
         & opt
             (enum
                [ ("block", Monitor_fleet.Fleet.Block);
                  ("shed", Monitor_fleet.Fleet.Shed_oldest);
                  ("reject", Monitor_fleet.Fleet.Reject) ])
             Monitor_fleet.Fleet.Shed_oldest
         & info [ "policy" ] ~docv:"POLICY" ~doc)
  in
  let capacity_arg =
    let doc = "Per-shard ingest queue capacity." in
    Arg.(value & opt int 1024 & info [ "queue-capacity" ] ~docv:"N" ~doc)
  in
  let shards_arg =
    let doc = "Session shards (VINs are hashed across them)." in
    Arg.(value & opt int 8 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let loss_arg =
    let doc =
      "Per-session lossy tap: each session observes the bus through an \
       independent Bernoulli($(docv)) channel-fault model, so sessions see \
       different subsets of the same traffic."
    in
    Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"P" ~doc)
  in
  let crash_arg =
    let doc =
      "Chaos: crash $(docv) deterministically-chosen sessions mid-run (the \
       fleet must quarantine and restart them, not lose them)."
    in
    Arg.(value & opt int 0 & info [ "crash" ] ~docv:"N" ~doc)
  in
  let verify_arg =
    let doc =
      "After the drain, re-run every clean surviving session through the \
       single-session offline oracle and fail (exit 3) unless the verdict \
       digests are identical."
    in
    Arg.(value & flag & info [ "verify" ] ~doc)
  in
  let violate_arg =
    let doc =
      "Chaos: make $(docv) deterministically-chosen sessions observe a \
       rule-violating frame burst (BrakeRequested held with positive \
       RequestedDecel) mid-run; with --postmortem-dir each writes a \
       violation bundle."
    in
    Arg.(value & opt int 0 & info [ "violate" ] ~docv:"N" ~doc)
  in
  let postmortem_arg =
    let doc =
      "Give every session a flight recorder: rule violations and \
       quarantines freeze the recent-frame ring into post-mortem bundles \
       (candump slice, explanation, metrics, manifest) under $(docv)."
    in
    Arg.(value
         & opt (some string) None
         & info [ "postmortem-dir" ] ~docv:"DIR" ~doc)
  in
  let recorder_window_arg =
    let doc = "Seconds of ingested frames the flight recorder retains." in
    Arg.(value & opt float 5.0 & info [ "recorder-window" ] ~docv:"SECONDS" ~doc)
  in
  let hold_arg =
    let doc =
      "Keep the fleet (and its --status-port endpoint) alive for $(docv) \
       seconds after ingest, before the drain — a scrape window for \
       operators and CI."
    in
    Arg.(value & opt float 0.0 & info [ "hold" ] ~docv:"SECONDS" ~doc)
  in
  let run quick sessions policy capacity shards loss crash verify violate
      postmortem_dir recorder_window hold seed jobs tel =
    let module Fleet = Monitor_fleet.Fleet in
    let module Channel = Monitor_inject.Channel in
    let module Prng = Monitor_util.Prng in
    let dbc = Monitor_fsracc.Io.dbc in
    (* One simulated drive, tapped as CAN frames; every session watches
       (its lossy view of) this same traffic under its own VIN. *)
    let duration = if quick then 2.0 else 6.0 in
    let scenario = Monitor_hil.Scenario.steady_follow ~duration () in
    let config_sim = Monitor_hil.Sim.default_config ~seed scenario in
    let result = Monitor_hil.Sim.run config_sim in
    let taps =
      frames_of_trace dbc result.Monitor_hil.Sim.trace
      |> List.map (fun (time, frame) ->
             (time, frame, Monitor_can.Dbc.decode_frame dbc frame))
    in
    let vin i = Printf.sprintf "VIN%05d" i in
    let channels =
      Array.init sessions (fun i ->
          let profile =
            if loss > 0.0 then Channel.Bernoulli loss else Channel.Clean
          in
          Channel.model ~seed:(Prng.derive seed (100_000 + i)) profile)
    in
    let crash_ticks : (string, int) Hashtbl.t = Hashtbl.create 8 in
    (if crash > 0 then begin
       let g = Prng.create (Prng.derive seed 999) in
       let order = Array.init sessions Fun.id in
       Prng.shuffle g order;
       for k = 0 to min crash sessions - 1 do
         Hashtbl.replace crash_ticks (vin order.(k)) (5 + Prng.int g 100)
       done
     end);
    (* Violation chaos: an independent derived stream picks the victims,
       skipping crash-chosen VINs so the two bundle kinds stay disjoint
       and CI can assert on each. *)
    let violate_vins : (string, unit) Hashtbl.t = Hashtbl.create 8 in
    (if violate > 0 then begin
       let g = Prng.create (Prng.derive seed 777) in
       let order = Array.init sessions Fun.id in
       Prng.shuffle g order;
       let chosen = ref 0 in
       Array.iter
         (fun idx ->
           let v = vin idx in
           if !chosen < violate && not (Hashtbl.mem crash_ticks v) then begin
             Hashtbl.replace violate_vins v ();
             incr chosen
           end)
         order
     end);
    let config =
      { (Fleet.default_config ~specs:Monitor_oracle.Rules.all) with
        Fleet.periods = Monitor_can.Dbc.signal_period dbc;
        shards;
        queue_capacity = capacity;
        overload = policy;
        seed;
        record_verdicts = false;
        publish_status = tel.status_port <> None;
        recorder =
          Option.map
            (fun dir ->
              { (Monitor_fleet.Recorder.default_config ~dir) with
                Monitor_fleet.Recorder.window = recorder_window })
            postmortem_dir;
        inject_fault =
          (if Hashtbl.length crash_ticks = 0 then None
           else
             Some
               (fun ~vin ~tick ->
                 match Hashtbl.find_opt crash_ticks vin with
                 | Some t when t = tick -> failwith "chaos: injected crash"
                 | Some _ | None -> ())) }
    in
    let delivered : (string, (float * (string * Monitor_signal.Value.t) list) list ref)
        Hashtbl.t =
      Hashtbl.create (if verify then sessions else 1)
    in
    let sent : (string, Fleet.frame list ref) Hashtbl.t =
      Hashtbl.create (if verify then sessions else 1)
    in
    let note_admit (f : Fleet.frame) =
      if verify then begin
        let r =
          match Hashtbl.find_opt sent f.Fleet.vin with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.replace sent f.Fleet.vin r;
            r
        in
        r := f :: !r
      end
    in
    let note_shed (f : Fleet.frame) =
      if verify then
        match Hashtbl.find_opt sent f.Fleet.vin with
        | Some r -> r := List.filter (fun g -> g != f) !r
        | None -> ()
    in
    (* Five consecutive taps in the middle of the drive carry the
       violating overrides for the chosen sessions: BrakeRequested held
       true against a positive commanded deceleration (rule5 is
       tick-local, so the recorded slice replays to the same verdict on
       any tick grid). *)
    let ntaps = List.length taps in
    let inject_lo = ntaps / 3 in
    let violation_updates =
      [ ("BrakeRequested", Monitor_signal.Value.Bool true);
        ("RequestedDecel", Monitor_signal.Value.Float 1.5) ]
    in
    (* /sessions reads the fleet's atomically-published status document;
       the cell starts empty because the fleet only exists once the pool
       is up. *)
    let fleet_cell = Atomic.make None in
    let sessions_route =
      ( "/sessions",
        fun () ->
          Serve.ok ~content_type:"application/json"
            (match Atomic.get fleet_cell with
            | Some fleet -> Fleet.published_status fleet
            | None -> "{\"sessions\":[],\"shards\":[],\"totals\":{}}\n") )
    in
    let summary =
      with_telemetry ~extra_routes:[ sessions_route ] tel (fun ~progress ->
          with_pool jobs (fun pool ->
              let prog = progress ~unit_name:"frames" "fleet" in
              (match prog with
              | Some p -> Progress.start p ~total:(ntaps * sessions)
              | None -> ());
              let fleet = Fleet.create ~pool ?progress:prog config in
              Atomic.set fleet_cell (Some fleet);
              List.iteri
                (fun ti (time, frame, updates) ->
                  for i = 0 to sessions - 1 do
                    match channels.(i) ~time frame with
                    | `Deliver ->
                      let updates =
                        if
                          ti >= inject_lo
                          && ti < inject_lo + 5
                          && Hashtbl.mem violate_vins (vin i)
                        then updates @ violation_updates
                        else updates
                      in
                      let f = { Fleet.vin = vin i; time; updates } in
                      (match Fleet.ingest fleet f with
                      | `Accepted -> note_admit f
                      | `Shed victim -> note_admit f; note_shed victim
                      | `Rejected -> ())
                    | `Drop | `Corrupt ->
                      (* Either way the passive tap never hands the frame
                         to this session's feed. *)
                      ()
                  done;
                  Fleet.pump fleet)
                taps;
              if hold > 0.0 then Unix.sleepf hold;
              let summary = Fleet.shutdown fleet in
              (match prog with Some p -> Progress.finish p | None -> ());
              summary))
    in
    ignore
      (Hashtbl.fold
         (fun v r () ->
           Hashtbl.replace delivered v
             (ref
                (List.rev_map
                   (fun (f : Fleet.frame) -> (f.Fleet.time, f.Fleet.updates))
                   !r)))
         sent ());
    print_string (Fleet.render_summary summary);
    if verify then begin
      let compared = ref 0 and mismatched = ref 0 and skipped = ref 0 in
      List.iter
        (fun (row : Fleet.session_summary) ->
          match row.Fleet.s_disposition with
          | Fleet.Served
            when row.Fleet.s_restarts = 0
                 && row.Fleet.s_faults = []
                 && row.Fleet.s_dropped = 0 ->
            incr compared;
            let updates =
              match Hashtbl.find_opt delivered row.Fleet.s_vin with
              | Some r -> !r
              | None -> []
            in
            let _, digest =
              Fleet.isolated_stream
                ~periods:(Monitor_can.Dbc.signal_period dbc)
                ~specs:Monitor_oracle.Rules.all updates
            in
            if digest <> row.Fleet.s_digest then begin
              incr mismatched;
              Printf.printf "verify: %s DIVERGED from the isolated oracle\n"
                row.Fleet.s_vin
            end
          | _ -> incr skipped)
        summary.Fleet.sessions;
      Printf.printf
        "verify: %d sessions byte-identical to isolated runs, %d faulted/shed \
         skipped, %d mismatched\n"
        (!compared - !mismatched) !skipped !mismatched;
      if !mismatched > 0 then exit 3
    end
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Serve many per-VIN monitor sessions from one stream server:            lossy taps, injected session crashes, overload policies,            watchdogs and a graceful drain")
    Term.(const run $ quick_arg $ sessions_arg $ policy_arg $ capacity_arg
          $ shards_arg $ loss_arg $ crash_arg $ verify_arg $ violate_arg
          $ postmortem_arg $ recorder_window_arg $ hold_arg $ seed_arg 2014L
          $ jobs_arg $ telemetry_term)

let trace_stats_cmd =
  let trace_arg =
    let doc = "CSV trace file to summarise." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)
  in
  let run trace_file =
    match Monitor_trace.Csv.load trace_file with
    | Error msg ->
      prerr_endline ("error: " ^ msg);
      exit 1
    | Ok trace ->
      print_string
        (Monitor_trace.Analyze.render (Monitor_trace.Analyze.analyze trace))
  in
  Cmd.v
    (Cmd.info "trace-stats"
       ~doc:"Summarise a capture: rates, jitter, value ranges, exceptional              samples")
    Term.(const run $ trace_arg)

let rules_cmd =
  let run () =
    List.iteri
      (fun i spec ->
        Printf.printf "Rule #%d: %s\n  %s\n\n" i
          (Monitor_oracle.Rules.description i)
          (Monitor_oracle.Rules.source i);
        ignore spec)
      Monitor_oracle.Rules.all
  in
  Cmd.v (Cmd.info "rules" ~doc:"Print the seven safety rules")
    Term.(const run $ const ())

let builtin_specs () =
  Monitor_oracle.Rules.all
  @ [ Monitor_oracle.Rules.relaxed_rule2 ();
      Monitor_oracle.Rules.relaxed_rule3 ();
      Monitor_oracle.Rules.relaxed_rule4 ();
      Monitor_oracle.Rules.range_consistency_naive;
      Monitor_oracle.Rules.range_consistency_warmup ]

let lint_cmd =
  let module L = Monitor_analysis.Speclint in
  let target_arg =
    let doc =
      "What to lint: a .spec file path, or 'builtin' for the compiled-in \
       rule set (the seven paper rules, their relaxed variants and the \
       warm-up demonstration pair)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC" ~doc)
  in
  let dbc_arg =
    let doc =
      "Resolve signals against the built-in FSRACC message database and \
       physical signal ranges; enables the unknown-signal, kind, range and \
       period checks."
    in
    Arg.(value & flag & info [ "dbc" ] ~doc)
  in
  let strict_arg =
    let doc = "Exit non-zero if any error-severity diagnostic is reported." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let allow_arg =
    let doc =
      "Suppress a diagnostic code (kebab-case, e.g. 'window-subsamples'); \
       repeatable."
    in
    Arg.(value & opt_all string [] & info [ "allow" ] ~docv:"CODE" ~doc)
  in
  let json_arg =
    let doc =
      "Emit the diagnostics as one JSON object (code, severity, path, \
       span, message per diagnostic) instead of the text report."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run target use_dbc strict allow_names json =
    let allow =
      List.map
        (fun name ->
          match L.code_of_name name with
          | Some c -> c
          | None ->
            prerr_endline
              ("unknown diagnostic code: " ^ name ^ " (known: "
              ^ String.concat ", " (List.map L.code_name L.all_codes)
              ^ ")");
            exit 1)
        allow_names
    in
    let env = if use_dbc then fsracc_lint_env () else L.env () in
    let items =
      if String.equal target "builtin" then begin
        let specs = builtin_specs () in
        let cross = L.cross_check specs in
        Ok
          (List.mapi
             (fun i spec ->
               let mine =
                 List.filter_map
                   (fun (j, (d : L.diagnostic)) ->
                     if j = i && not (List.mem d.L.code allow) then Some d
                     else None)
                   cross
               in
               (spec, L.check_env ~allow env spec @ mine))
             specs)
      end
      else L.lint_file ~env ~allow target
    in
    match items with
    | Error msg ->
      prerr_endline ("spec file error: " ^ msg);
      exit 1
    | Ok items ->
      print_string
        (if json then Monitor_oracle.Report.render_diagnostics_json items
         else Monitor_oracle.Report.render_diagnostics items);
      let has_errors =
        List.exists (fun (_, ds) -> L.errors ds <> []) items
      in
      exit (if strict && has_errors then 1 else 0)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyse rule specifications (resolution, ranges,              multi-rate windows, staleness/warm-up consistency)")
    Term.(const run $ target_arg $ dbc_arg $ strict_arg $ allow_arg $ json_arg)

let plan_cmd =
  let module L = Monitor_analysis.Speclint in
  let module P = Monitor_analysis.Specplan in
  let target_arg =
    let doc =
      "What to compile: a .spec file path, or 'builtin' for the seven \
       compiled-in paper rules."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC" ~doc)
  in
  let dbc_arg =
    let doc =
      "Fold the built-in FSRACC signal ranges through the plan: nodes the \
       declared ranges decide statically are marked always-true/false and \
       the branches they short-circuit are marked dead."
    in
    Arg.(value & flag & info [ "dbc" ] ~doc)
  in
  let dot_arg =
    let doc = "Emit the shared DAG as a Graphviz digraph." in
    Arg.(value & flag & info [ "dot" ] ~doc)
  in
  let json_arg =
    let doc = "Emit the plan and its analysis facts as one JSON object." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run target use_dbc dot json =
    let specs =
      if String.equal target "builtin" then Monitor_oracle.Rules.all
      else
        match Monitor_mtl.Spec_file.load target with
        | Ok specs -> specs
        | Error msg ->
          prerr_endline ("spec file error: " ^ msg);
          exit 1
    in
    if specs = [] then begin
      prerr_endline "no specs to compile";
      exit 1
    end;
    let env = if use_dbc then fsracc_lint_env () else L.env () in
    let t = P.analyze ~env specs in
    if dot then print_string (P.to_dot t)
    else if json then print_string (P.to_json t)
    else print_string (P.render t)
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Compile a rule set into the fused evaluation plan and dump            the shared DAG, the static analysis facts (shared subterms,            statically decided nodes, per-rule cost) and the instruction            listing")
    Term.(const run $ target_arg $ dbc_arg $ dot_arg $ json_arg)

let check_cmd =
  let trace_arg =
    let doc = "CSV trace file (time,signal,value) to check." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc)
  in
  let rule_arg =
    let doc =
      "A rule to check, as a spec-language formula; repeatable.  Without \
       any, the seven paper rules are used."
    in
    Arg.(value & opt_all string [] & info [ "rule"; "r" ] ~doc)
  in
  let spec_file_arg =
    let doc = "Load rules from a .spec file (see specs/paper_rules.spec)." in
    Arg.(value & opt (some file) None & info [ "spec-file"; "s" ] ~doc)
  in
  let explain_arg =
    let doc = "Explain each violated rule at its first violating tick." in
    Arg.(value & flag & info [ "explain" ] ~doc)
  in
  let lint_arg =
    let doc =
      "Pre-flight: lint the rules against the built-in DBC first and \
       refuse to run if any error-severity diagnostic is reported."
    in
    Arg.(value & flag & info [ "lint" ] ~doc)
  in
  let run trace_file rule_sources spec_file explain lint robust =
    match Monitor_trace.Csv.load trace_file with
    | Error msg ->
      prerr_endline ("error: " ^ msg);
      exit 1
    | Ok trace ->
      let file_specs =
        match spec_file with
        | None -> []
        | Some path -> begin
          match Monitor_mtl.Spec_file.load path with
          | Ok specs -> specs
          | Error msg ->
            prerr_endline ("spec file error: " ^ msg);
            exit 1
        end
      in
      let specs =
        match rule_sources, file_specs with
        | [], [] -> Monitor_oracle.Rules.all
        | [], specs -> specs
        | sources, file_specs ->
          file_specs
          @
          List.mapi
            (fun i src ->
              match Monitor_mtl.Parser.formula_of_string src with
              | Ok f ->
                Monitor_mtl.Spec.make ~name:(Printf.sprintf "cli%d" i) f
              | Error msg ->
                prerr_endline ("rule parse error: " ^ msg);
                exit 1)
            sources
      in
      if lint then begin
        let module L = Monitor_analysis.Speclint in
        let env = fsracc_lint_env () in
        let items = List.map (fun s -> (s, L.check_env env s)) specs in
        if List.exists (fun (_, ds) -> L.errors ds <> []) items then begin
          print_string (Monitor_oracle.Report.render_diagnostics items);
          prerr_endline "lint errors: refusing to run the oracle";
          exit 1
        end
      end;
      let outcomes = Monitor_oracle.Oracle.check ~robust specs trace in
      print_endline (Monitor_oracle.Report.render_outcomes outcomes);
      (* A satisfied guarded rule that was never armed proved nothing:
         flag it (SS III-C's coverage concern). *)
      List.iter
        (fun spec ->
          let v = Monitor_oracle.Vacuity.analyze spec trace in
          if v.Monitor_oracle.Vacuity.vacuous then
            print_endline ("  note: " ^ Monitor_oracle.Vacuity.render v))
        specs;
      if explain then
        List.iter
          (fun spec ->
            match Monitor_mtl.Explain.first_violation spec trace with
            | Some (time, report) ->
              Printf.printf "\nwhy %s fails at t=%.2fs:\n%s"
                spec.Monitor_mtl.Spec.name time
                (Monitor_mtl.Explain.render report)
            | None -> ())
          specs;
      let violated =
        List.exists
          (fun o -> o.Monitor_oracle.Oracle.status = Monitor_oracle.Oracle.Violated)
          outcomes
      in
      exit (if violated then 2 else 0)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run the monitor-based oracle over a stored CSV trace")
    Term.(const run $ trace_arg $ rule_arg $ spec_file_arg $ explain_arg
          $ lint_arg $ robust_arg)

let all_cmd =
  let run quick seed jobs tel =
    with_telemetry tel (fun ~progress ->
        with_pool jobs (fun pool ->
            print_string (Monitor_experiments.Figure1.rendered ());
            print_newline ();
            let base =
              if quick then Monitor_experiments.Table1.quick_options
              else Monitor_experiments.Table1.paper_options
            in
            let options = { base with Monitor_experiments.Table1.seed } in
            print_string
              (Monitor_experiments.Table1.rendered
                 (Monitor_experiments.Table1.run ~options ~pool
                    ?progress:(progress "table1") ()));
            print_newline ();
            print_string
              (Monitor_experiments.Vehicle_logs.rendered
                 (Monitor_experiments.Vehicle_logs.run ~pool
                    ?progress:(progress "vehicle-logs") ()));
            print_newline ();
            print_string
              (Monitor_experiments.Multirate.rendered
                 (Monitor_experiments.Multirate.run ()));
            print_newline ();
            print_string
              (Monitor_experiments.Warmup.rendered
                 (Monitor_experiments.Warmup.run ()));
            print_newline ();
            let lossy_base =
              if quick then Monitor_experiments.Lossy_bus.quick_options
              else Monitor_experiments.Lossy_bus.paper_options
            in
            let lossy_options =
              { lossy_base with Monitor_experiments.Lossy_bus.seed }
            in
            print_string
              (Monitor_experiments.Lossy_bus.rendered
                 (Monitor_experiments.Lossy_bus.run ~options:lossy_options
                    ~pool ?progress:(progress "lossy-bus") ()))))
  in
  Cmd.v (Cmd.info "all" ~doc:"Run every experiment in sequence")
    Term.(const run $ quick_arg $ seed_arg 2014L $ jobs_arg $ telemetry_term)

let () =
  let doc = "Monitor-based oracles for CPS testing (DSN 2014) reproduction" in
  let info = Cmd.info "repro" ~doc in
  exit (Cmd.eval (Cmd.group info
    [ figure1_cmd; table1_cmd; vehicle_logs_cmd; multirate_cmd; warmup_cmd;
      ablation_cmd; lossy_bus_cmd; simulate_cmd; fleet_cmd; trace_stats_cmd;
      rules_cmd;
      lint_cmd; plan_cmd; check_cmd; all_cmd ]))
