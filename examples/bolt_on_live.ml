(* The bolt-on monitor as it would run at runtime: an online, constant-
   memory monitor fed snapshot by snapshot from a live CAN tap, emitting
   verdicts as soon as they are decidable.  Bounded-future rules resolve
   with at most their horizon of delay; everything else resolves
   immediately.

   Run with: dune exec examples/bolt_on_live.exe *)

module Sim = Monitor_hil.Sim
module Scenario = Monitor_hil.Scenario
module Mtl = Monitor_mtl
module Oracle = Monitor_oracle.Oracle

let () =
  (* Capture a faulted HIL run: a positive TargetRelVel injection makes
     the feature chase a target it believes is fleeing. *)
  let plan =
    [ (2.0, Sim.Set ("TargetRelVel", Monitor_signal.Value.Float 700.0));
      (22.0, Sim.Clear_all) ]
  in
  let result =
    Sim.run ~plan (Sim.default_config (Scenario.steady_follow ()))
  in

  (* "Replay" the capture through the online monitor as if live. *)
  let rule = Monitor_oracle.Rules.rule 6 in
  Printf.printf "monitoring: %s\nhorizon: %.2fs\n\n"
    (Mtl.Formula.to_string rule.Mtl.Spec.formula)
    (Mtl.Spec.horizon rule);
  let monitor = Mtl.Online.create rule in
  let snapshots = Oracle.snapshots_of_trace result.Sim.trace in
  let violations = ref 0 in
  let max_lag = ref 0.0 in
  (* [step_iter] is the allocation-free streaming interface: verdicts are
     delivered through a callback the moment they become decidable,
     without materialising per-tick lists — the shape a real bus tap
     would run. *)
  List.iter
    (fun snap ->
      let now = snap.Monitor_trace.Snapshot.time in
      Mtl.Online.step_iter monitor snap (fun _tick time verdict ->
          max_lag := Float.max !max_lag (now -. time);
          if Mtl.Verdict.equal verdict Mtl.Verdict.False then begin
            incr violations;
            if !violations <= 5 then
              Printf.printf
                "t=%6.2f  VIOLATION about t=%6.2f (decided %.0f ms later)\n" now
                time
                ((now -. time) *. 1000.0)
          end))
    snapshots;
  let final = Mtl.Online.finalize_resolved monitor in
  let late_violations = ref 0 in
  for i = 0 to final - 1 do
    if
      Mtl.Verdict.equal (Mtl.Online.resolved_verdict monitor i)
        Mtl.Verdict.False
    then incr late_violations
  done;
  Printf.printf
    "\n%d violating ticks (%d resolved only at end of log)\n\
     worst resolution lag while live: %.0f ms\n"
    !violations !late_violations
    (!max_lag *. 1000.0)
