(* Authoring richer specifications: a state machine for mode-based state
   (avoiding nested temporal operators, as the paper does) plus a warmup
   wrapper for discontinuity-tolerant rules.

   The property: once the ACC has been engaged for at least half a second,
   a tracked target closer than 10 m must mean braking is requested within
   300 ms.

   Run with: dune exec examples/custom_spec.exe *)

module Mtl = Monitor_mtl
module Value = Monitor_signal.Value
module Trace = Monitor_trace.Trace
module Record = Monitor_trace.Record

let parse = Mtl.Parser.formula_of_string_exn

(* A mode machine: Off -> Engaging -> Active.  The Engaging state absorbs
   the transient right after engagement (the machine-flavoured counterpart
   of warmup). *)
let engagement =
  Mtl.State_machine.make ~name:"engagement" ~initial:"off"
    ~states:[ "off"; "engaging"; "active" ]
    ~transitions:
      [ { Mtl.State_machine.source = "off";
          guard = Mtl.State_machine.When (parse "ACCEnabled");
          target = "engaging" };
        { Mtl.State_machine.source = "engaging";
          guard = Mtl.State_machine.When (parse "not ACCEnabled");
          target = "off" };
        { Mtl.State_machine.source = "engaging";
          guard = Mtl.State_machine.After 0.5;
          target = "active" };
        { Mtl.State_machine.source = "active";
          guard = Mtl.State_machine.When (parse "not ACCEnabled");
          target = "off" } ]

let spec =
  Mtl.Spec.make ~name:"brake_on_close_target"
    ~description:"in active mode, a close target forces braking within 300 ms"
    ~machines:[ engagement ]
    (parse
       "(mode(engagement, active) and VehicleAhead and TargetRange < 10.0) \
        -> eventually[0.0, 0.3] BrakeRequested")

(* Build a log: engage at t=0.1, target appears close at t=1.0, braking
   only starts at t=1.5 — too late, the rule must fire. *)
let log =
  let records = ref [] in
  let emit time name value = records := Record.make ~time ~name ~value :: !records in
  let ticks = 200 in
  for i = 0 to ticks - 1 do
    let t = float_of_int i *. 0.01 in
    emit t "ACCEnabled" (Value.Bool (t >= 0.1));
    emit t "VehicleAhead" (Value.Bool (t >= 1.0));
    emit t "TargetRange" (Value.Float (if t >= 1.0 then 8.0 else 0.0));
    emit t "BrakeRequested" (Value.Bool (t >= 1.5))
  done;
  Trace.of_list (List.rev !records)

(* Before running anything, lint the spec against the FSRACC interface
   description: signal names and kinds resolve, comparisons are
   satisfiable within declared ranges, windows are compatible with the
   bus periods.  The same environment can be passed to the oracle as
   [?preflight] to make it refuse statically broken rules. *)
let lint_env =
  Monitor_analysis.Speclint.env ~dbc:Monitor_fsracc.Io.dbc
    ~defs:(List.map snd Monitor_fsracc.Io.signals)
    ()

let () =
  (match Monitor_analysis.Speclint.check_env lint_env spec with
   | [] -> print_endline "speclint: clean\n"
   | ds ->
     Format.printf "speclint:@.%a@.@."
       (Format.pp_print_list Monitor_analysis.Speclint.pp_diagnostic)
       ds);
  (* A deliberately broken variant: the guard can never arm (TargetRange
     is declared [0, 200]), so every satisfied verdict would be vacuous.
     The linter rejects it before a single tick is evaluated. *)
  let broken =
    Mtl.Spec.make ~name:"dead_guard"
      (parse "TargetRange > 500.0 -> eventually[0.0, 0.3] BrakeRequested")
  in
  Format.printf "speclint on a dead-guard variant:@.%a@.@."
    (Format.pp_print_list Monitor_analysis.Speclint.pp_diagnostic)
    (Monitor_analysis.Speclint.check_env lint_env broken)

let () =
  Format.printf "spec:@.%a@.@." Mtl.Spec.pp spec;
  let outcome = Monitor_oracle.Oracle.check_spec ~preflight:lint_env spec log in
  print_endline (Monitor_oracle.Report.render_outcome outcome);
  (* The first violation is at t=1.0: the close target was not answered by
     braking within 300 ms (braking only came at 1.5 s). *)
  match outcome.Monitor_oracle.Oracle.episodes with
  | e :: _ ->
    Printf.printf "first violation at %.2fs (expected 1.00s)\n"
      e.Monitor_oracle.Oracle.start_time
  | [] -> print_endline "unexpected: no violation found"
